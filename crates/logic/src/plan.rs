//! Compiled evaluation plans: hash-consed formula IR plus a linear
//! executor, the engine behind [`evaluate_packed`](crate::evaluate_packed).
//!
//! The recursive evaluator memoises subformulas by *pointer* identity,
//! so structurally equal subformulas built separately — exactly what the
//! algorithm-to-formula compiler and the characteristic-formula
//! construction produce — are recomputed once per distinct `Arc`. A
//! [`Plan`] instead **lowers** a formula (or a whole suite of formulas
//! sharing one model) into a flat, topologically ordered instruction
//! list with *structural* hash-consing: two subformulas that look the
//! same become one instruction, whether or not they share memory.
//!
//! # Lowering
//!
//! Each AST node becomes at most one instruction (an internal `Op`)
//! whose operands are earlier instruction ids. Lowering folds on the
//! fly:
//!
//! * `⟨α⟩≥0 φ → ⊤`, and a diamond over a relation the model does not
//!   store (or over `⊥`) `→ ⊥`;
//! * `¬¬a → a`, `¬⊤ → ⊥`, `¬⊥ → ⊤`;
//! * `a ∧ a → a`, `a ∧ ⊤ → a`, `a ∧ ⊥ → ⊥` (dually for `∨`), with
//!   commutative operands canonicalised by id order so `a ∧ b` and
//!   `b ∧ a` cons to the same instruction.
//!
//! Folds can orphan already-lowered subtrees, so a finished plan is
//! compacted to the instructions reachable from its roots.
//!
//! # Slot allocation and the level schedule
//!
//! Every instruction writes one [`Bitset`] slot. Instructions are
//! scheduled by DAG *level* (an instruction's level is one more than
//! the deepest of its operands), and a slot is recycled one level
//! after its last reader's level (roots are pinned) — so two
//! instructions on the same level never alias each other's operands
//! and the whole level can execute concurrently. Peak memory stays
//! bounded by the width of the instruction DAG, not its node count — a
//! deep chain of diamonds runs in two slots however long it is. All
//! slot writes are full overwrites, so recycled storage is reused
//! without clearing.
//!
//! # Diamond strategies
//!
//! Diamond instructions have **three** implementations, chosen per
//! instruction at execution time ([`DiamondMode::Auto`]):
//!
//! * **forward** — walk the relation's CSR successor rows testing bits
//!   of `‖φ‖`, with early exit at the grade (the recursive evaluator's
//!   strategy; cost ≈ worlds + stored successor pairs — the
//!   `assign_from_fn` sweep visits every world even when its row is
//!   empty);
//! * **dense reverse** — union the relation's predecessor bit rows
//!   ([`Kripke::predecessor_rows`]) over `iter_ones(‖φ‖)`; cost ≈
//!   `|‖φ‖| × n/64` word ORs, a large win when `‖φ‖` is sparse. Only
//!   legal for grade-1 diamonds on models whose n²-bit predecessor
//!   matrix fits under [`REVERSE_WORD_CAP`];
//! * **CSC gather** — walk the relation's CSC predecessor lists
//!   ([`Kripke::predecessors_csc`]) over `iter_ones(‖φ‖)`: `out ∪=
//!   preds(u)` for grade 1, a counting scatter for grade ≥ 2. Cost ≈
//!   the predecessor entries of the satisfying worlds; `O(n + edges)`
//!   storage, so it is legal at **any** model size and any grade — the
//!   path that keeps reverse evaluation reachable on huge sparse
//!   models beyond the dense cap.
//!
//! Under [`DiamondMode::Auto`] the three are compared by a measured
//! cost model (in the shared "entry ops" currency):
//!
//! * forward: `targets + n` (the sweep visits every world, empty row
//!   or not — comparing against the pair count alone was a bug: a
//!   sparse relation over a large universe made the forward walk look
//!   free when its `O(n)` sweep dominated);
//! * dense reverse: `|‖φ‖| × row_words`, `∞` when illegal;
//! * CSC: `|‖φ‖| + Σ_{u ∈ ‖φ‖} |preds(u)|`, plus `n/64` (zeroing) for
//!   grade 1 or `n` (the counts array) for graded — graded diamonds
//!   are costed via actual CSC row lengths instead of being forced
//!   forward.
//!
//! Ties break toward forward, then dense. The `PORTNUM_REVERSE`
//! environment variable ([`reverse_override`]) pins Auto's choice for
//! CI (`csc` / `dense` / `off`); explicit modes are never overridden.
//!
//! # Fixpoints
//!
//! A µ/ν binder lowers to one `Fixpoint` instruction owning a
//! self-contained *body* instruction list: `Var` reads the enclosing
//! binder's accumulator, `Arg` reads an outer body's value (nested
//! binders nest bodies — a body's external args are ids in its
//! *enclosing* body, never plan ids, because a variable free at the
//! plan level is a lowering error). The executor iterates the body
//! until the accumulator is stable — Kleene iteration, µ from ⊥ and ν
//! from ⊤; positivity is enforced at formula construction, so the
//! accumulator moves one way and converges within `n + 1` root
//! evaluations:
//!
//! * the **first** iteration evaluates the body densely (every op,
//!   every world), exactly like the straight-line executor;
//! * every later iteration re-evaluates only the **dirty frontier**:
//!   per body op, the candidate worlds whose value can have moved
//!   given the flips recorded one operand upstream (the accumulator's
//!   flips seed `Var`; a diamond's candidates are its flipped inner
//!   worlds' CSC predecessors), with the same n/4 dense-fallback
//!   threshold as [`ModelChecker::resume`]'s delta repair. An
//!   iteration therefore costs O(frontier), not O(model): a monotone
//!   iteration flips each world at most once, so a path-shaped
//!   reachability query totals O(edges) across *all* its iterations
//!   instead of O(n · iterations).
//!
//! `PORTNUM_FIXPOINT=dense` ([`fixpoint_override`]) pins every
//! iteration to the dense pass — the always-correct baseline the
//! frontier path is differentially pinned against and benchmarked
//! over. Fixpoint instructions price into the shared work currency at
//! twice their body's per-iteration work plus an `n/8` flip term (the
//! flip-once amortization above), which keeps
//! [`ModelChecker::estimate_work`] — and therefore serve admission —
//! honest about iterate-until-stable batches. Fixpoint instructions
//! run on the sequential instruction path (their *body* ops still
//! chunk over the pool); scheduling one as a level-parallel chunk
//! would nest pool dispatches from a worker thread.
//!
//! # Parallel execution
//!
//! [`Plan::execute`] runs on the persistent worker pool
//! ([`portnum_graph::pool`]) along two axes, both gated on the shared
//! work threshold ([`portnum_graph::partition::threads_for`]) so tiny
//! models stay on the sequential fast path:
//!
//! * **within an instruction** — `Prop` and forward diamonds split the
//!   world range at 64-aligned, work-weighted boundaries (the CSR
//!   offsets are the work prefix-sums) and fill disjoint word ranges
//!   of the output slot; dense reverse diamonds split `iter_ones(‖φ‖)`
//!   at popcount quantiles into per-chunk partial unions merged with
//!   [`Bitset::or_assign`]; CSC gathers split the *entry* space at
//!   equal-count boundaries that may fall inside a single hub world's
//!   predecessor row, so one high-degree world can no longer serialise
//!   a chunk;
//! * **across instructions** — all instructions of one DAG level are
//!   independent (the level-aware slot allocator guarantees no
//!   aliasing), so a wide level executes as one pool call with one
//!   chunk per instruction.
//!
//! Forward sweeps (sequential and chunked alike) are additionally
//! tiled over the shared cache-block geometry
//! ([`portnum_graph::blocking`]) with row-bound/row-target lookahead
//! prefetch — a pure traversal-order-and-hint layer.
//!
//! Both axes write only per-chunk state, so results are bit-identical
//! to the sequential engine (proptest-pinned; `execute_forced_parallel`
//! is the test knob that drives them below the gate, and
//! `execute_forced_sequential` the converse knob pinning the reference
//! at sizes the work gate would parallelise).
//!
//! The gate itself is two-stage: the static word floor
//! ([`portnum_graph::partition::threads_for`]) plus a floor derived
//! from the pool's *measured* per-dispatch coordination cost
//! ([`portnum_graph::partition::parallel_floor_words`], calibrated at
//! pool construction and surfaced in [`ExecStats::dispatch_cost_ns`]).
//!
//! # Suites and the per-model cache
//!
//! [`Plan::compile_suite`] lowers many formulas into one plan (shared
//! instructions evaluated once, one root per formula);
//! [`ModelChecker`] is the incremental variant — a per-model cache that
//! keeps the hash-cons table, every computed truth vector, and the
//! model's bisimulation quotient alive across `check` calls, so a
//! formula suite arriving one formula at a time (the compiler's
//! emission order) still pays for each distinct subformula once.

use crate::error::LogicError;
use crate::formula::{Formula, FormulaKind};
use crate::kripke::Kripke;
use portnum_graph::bitset::{fill_words_from_fn, Bitset};
use portnum_graph::blocking;
use portnum_graph::csc::CscAdjacency;
use portnum_graph::partition::{encode_threads, quantile_ranges, threads_for, FxHashMap};
use portnum_graph::pool::WorkerPool;
use portnum_graph::resilience::{ExecControl, Interrupted};
use std::ops::Range;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Strategy selection for diamond instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DiamondMode {
    /// Choose per instruction by the three-way cost model (the
    /// default). Overridable process-wide via `PORTNUM_REVERSE` — see
    /// [`reverse_override`].
    #[default]
    Auto,
    /// Always walk the forward CSR rows.
    Forward,
    /// Evaluate through predecessors, picking the denser store when
    /// legal: the [`BitMatrix`](portnum_graph::bitset::BitMatrix) rows
    /// for grade-1 diamonds on models under [`REVERSE_WORD_CAP`], the
    /// CSC gather everywhere else (graded diamonds, over-cap models) —
    /// the forward sweep is never taken. Check
    /// [`ExecStats::reverse_diamonds`] / [`ExecStats::csc_diamonds`]
    /// when pinning this mode for a measurement.
    Reverse,
    /// Always use the CSC gather ([`Kripke::predecessors_csc`]), any
    /// grade, any model size.
    Csc,
}

/// Predecessor matrices larger than this many `u64` words (16 MiB) are
/// never built by the evaluator — beyond it the n²-bit dense reverse
/// storage stops paying for itself and the reverse diamond path runs
/// on the `O(n + edges)` CSC store instead ([`DiamondMode::Csc`]'s
/// implementation, which the cost model and [`DiamondMode::Reverse`]
/// fall through to).
pub const REVERSE_WORD_CAP: usize = 1 << 21;

/// The effective dense cap, overridable for tests (differential suites
/// shrink it so small proptest models exercise the over-cap CSC path).
static REVERSE_WORD_CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(REVERSE_WORD_CAP);

fn reverse_word_cap() -> usize {
    REVERSE_WORD_CAP_OVERRIDE.load(Ordering::Relaxed)
}

/// Shrinks (or restores) the dense predecessor-matrix cap for this
/// process. Test-only: lets differential suites push proptest-sized
/// models above the cap so the CSC path actually fires. Affects every
/// subsequent `Auto`/`Reverse` strategy choice in the process — do not
/// mix with tests that pin strategy *counts* under the default cap in
/// the same binary.
#[doc(hidden)]
pub fn set_reverse_word_cap_for_tests(words: usize) {
    REVERSE_WORD_CAP_OVERRIDE.store(words, Ordering::Relaxed);
}

/// How the `PORTNUM_REVERSE` environment variable pins
/// [`DiamondMode::Auto`]'s strategy choice, parsed once per process by
/// [`reverse_override`]. Explicit modes (`Forward` / `Reverse` /
/// `Csc`) are never overridden — the knob exists so CI can drive the
/// whole default-mode suite down one reverse implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReverseOverride {
    /// No override: `Auto` uses the cost model (the default).
    Auto,
    /// `Auto` never takes a reverse path (every diamond forward).
    Off,
    /// `Auto` takes the dense [`BitMatrix`] rows whenever legal
    /// (grade 1, under the cap), forward otherwise.
    ///
    /// [`BitMatrix`]: portnum_graph::bitset::BitMatrix
    Dense,
    /// `Auto` evaluates every diamond through the CSC gather.
    Csc,
}

/// How `PORTNUM_REVERSE` pins the `Auto` diamond strategy: `csc`,
/// `dense`, `off`, or `auto` (default). Parsed once per process; like
/// `PORTNUM_POOL` and `PORTNUM_REFINE`, an unrecognised value panics —
/// a CI job pinning one implementation must not silently run another.
pub fn reverse_override() -> ReverseOverride {
    static MODE: OnceLock<ReverseOverride> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("PORTNUM_REVERSE").as_deref() {
        Ok("csc") => ReverseOverride::Csc,
        Ok("dense") => ReverseOverride::Dense,
        Ok("off") => ReverseOverride::Off,
        Ok("auto") | Err(_) => ReverseOverride::Auto,
        Ok(other) => {
            panic!("unrecognised PORTNUM_REVERSE value {other:?} (use csc, dense, off, or auto)")
        }
    })
}

/// How the `PORTNUM_DELTA` environment variable steers
/// [`ModelChecker::resume`] after a [`crate::ModelDelta`], parsed once
/// per process by [`delta_override`]. The escape hatch exists so a
/// repair bug can be ruled in or out in production without a rebuild:
/// `PORTNUM_DELTA=rebuild` drops every cached truth vector (and the
/// cached quotient) at resume time and recomputes on demand, which is
/// always correct and never fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOverride {
    /// Incrementally repair cached truth vectors over the dirty
    /// frontier (the default).
    Repair,
    /// Drop all caches at resume; later checks recompute from scratch.
    Rebuild,
}

/// How `PORTNUM_DELTA` steers cache handling across deltas: `repair`
/// (default) or `rebuild`. Parsed once per process; like
/// `PORTNUM_REVERSE` and `PORTNUM_REFINE`, an unrecognised value
/// panics — a CI job pinning one implementation must not silently run
/// another.
pub fn delta_override() -> DeltaOverride {
    static MODE: OnceLock<DeltaOverride> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("PORTNUM_DELTA").as_deref() {
        Ok("rebuild") => DeltaOverride::Rebuild,
        Ok("repair") | Err(_) => DeltaOverride::Repair,
        Ok(other) => {
            panic!("unrecognised PORTNUM_DELTA value {other:?} (use repair or rebuild)")
        }
    })
}

/// How the `PORTNUM_FIXPOINT` environment variable steers the
/// iterate-until-stable executor (`eval_fixpoint_into`), parsed once
/// per process by [`fixpoint_override`]. `dense` re-evaluates the
/// whole body every Kleene iteration — always correct, never fast:
/// the baseline the frontier path is differentially pinned against
/// (the CI matrix drives the whole suite down it) and benchmarked
/// over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixpointOverride {
    /// After the first iteration, re-evaluate only the dirty frontier,
    /// with the per-op n/4 dense fallback (the default).
    Frontier,
    /// Re-evaluate the whole body every iteration.
    Dense,
}

/// How `PORTNUM_FIXPOINT` steers fixpoint iteration: `frontier`
/// (default) or `dense`. Parsed once per process; like
/// `PORTNUM_REVERSE` and `PORTNUM_DELTA`, an unrecognised value
/// panics — a CI job pinning one implementation must not silently run
/// another.
pub fn fixpoint_override() -> FixpointOverride {
    static MODE: OnceLock<FixpointOverride> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("PORTNUM_FIXPOINT").as_deref() {
        Ok("dense") => FixpointOverride::Dense,
        Ok("frontier") | Err(_) => FixpointOverride::Frontier,
        Ok(other) => {
            panic!("unrecognised PORTNUM_FIXPOINT value {other:?} (use frontier or dense)")
        }
    })
}

/// One plan instruction; operands are earlier instruction ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    Top,
    Bottom,
    /// Degree atom `q_d`.
    Prop(usize),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    /// `⟨α⟩≥grade φ` with `grade ≥ 1` over a stored relation (grade 0
    /// and missing relations fold away during lowering).
    Diamond { rel: u32, grade: usize, inner: u32 },
    /// The enclosing fixpoint's accumulator. Body-local: never appears
    /// in a plan's top-level instruction list.
    Var,
    /// The `k`-th external input of the enclosing fixpoint body (an
    /// outer binder's accumulator, imported frame by frame).
    /// Body-local, like [`Op::Var`].
    Arg(u32),
    /// `µX.φ` / `νX.φ`, iterated to stability by
    /// [`eval_fixpoint_into`]; the payload indexes the plan's
    /// [`FixBody`] table. Top-level fixpoints have no plan operands
    /// (their bodies are self-contained), so this is a leaf to
    /// [`Op::for_each_operand`].
    Fixpoint(u32),
}

impl Op {
    /// Calls `f` on each operand instruction id.
    fn for_each_operand(self, mut f: impl FnMut(u32)) {
        match self {
            Op::Top | Op::Bottom | Op::Prop(_) | Op::Var | Op::Arg(_) | Op::Fixpoint(_) => {}
            Op::Not(a) | Op::Diamond { inner: a, .. } => f(a),
            Op::And(a, b) | Op::Or(a, b) => {
                f(a);
                f(b);
            }
        }
    }
}

/// One fixpoint body: a self-contained linear instruction list
/// evaluated once per Kleene iteration. Body ids are body-local and
/// ascending (operands precede consumers, the lowering order); the
/// body is never compacted or level-scheduled — it executes in id
/// order over a dense per-op value store that persists across
/// iterations so the frontier pass can repair it in place.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FixBody {
    /// `true` for ν (iterate from ⊤), `false` for µ (from ⊥).
    greatest: bool,
    /// Body instructions; operand ids are body-local.
    ops: Vec<Op>,
    /// The body op whose value is the next accumulator.
    root: u32,
    /// External inputs, as instruction ids in the *enclosing* body
    /// (`Op::Arg(k)` reads the k-th entry). Always empty for a
    /// top-level body: only outer binder accumulators are importable,
    /// and at the plan level there are none.
    args: Vec<u32>,
}

/// Lowering statistics — the observability hook for structural dedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Pointer-distinct AST nodes visited during lowering. The
    /// recursive evaluator computes one truth vector per such node.
    pub ast_nodes: usize,
    /// Live instructions — truth vectors the executor actually
    /// computes. `instructions < ast_nodes` exactly when structural
    /// dedup or folding removed work pointer memoisation would do.
    pub instructions: usize,
    /// Lowered nodes resolved to an existing instruction (hash-cons
    /// hits, pointer-memo hits, and folds).
    pub dedup_hits: usize,
    /// Peak live `Bitset` slots during execution (the DAG width bound).
    pub slots: usize,
}

/// Execution statistics of one plan run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Instructions executed (= `Bitset` computations performed).
    pub executed: usize,
    /// Diamonds evaluated by the forward CSR walk.
    pub forward_diamonds: usize,
    /// Diamonds evaluated by dense predecessor-row unions
    /// ([`Kripke::predecessor_rows`]).
    pub reverse_diamonds: usize,
    /// Diamonds evaluated by the CSC predecessor gather
    /// ([`Kripke::predecessors_csc`]) — the reverse path that works
    /// beyond [`REVERSE_WORD_CAP`] and for graded diamonds.
    pub csc_diamonds: usize,
    /// Instructions whose per-world loop was split into pool chunks
    /// (world-range splits for `Prop`/forward diamonds, `iter_ones`
    /// splits for reverse diamonds).
    pub chunked_ops: usize,
    /// Instructions executed concurrently with same-level siblings
    /// (instruction-level parallelism over the plan DAG).
    pub level_parallel_ops: usize,
    /// Fixpoint instructions executed (each runs one
    /// iterate-until-stable loop over its body).
    pub fixpoints: usize,
    /// Total Kleene iterations across all fixpoint instructions
    /// (nested fixpoints included).
    pub fixpoint_iters: usize,
    /// World-bits re-evaluated by frontier iteration passes: the
    /// point-repaired candidate worlds, plus `n` for every body op
    /// that fell back to a dense recompute. The o(n · iters) figure
    /// the differential suite pins on path-shaped models.
    pub fixpoint_frontier_worlds: usize,
    /// Whole-body dense evaluation passes: the first iteration of
    /// every fixpoint, and every iteration under
    /// `PORTNUM_FIXPOINT=dense`.
    pub fixpoint_dense_passes: usize,
    /// The pool's measured per-dispatch coordination cost in
    /// nanoseconds ([`WorkerPool::dispatch_cost_ns`], calibrated once
    /// at pool construction) when this run dispatched any pool call,
    /// `0` for a fully sequential run. This is the number the Auto
    /// work gate prices against
    /// ([`portnum_graph::partition::parallel_floor_words`]), surfaced
    /// here so benches and regression rows can record the gate's
    /// input alongside the timings it produced.
    pub dispatch_cost_ns: u64,
}

impl ExecStats {
    /// Adds `other`'s counters into `self` (merging per-chunk stats).
    /// The dispatch cost is a calibration constant, not a counter, so
    /// it merges by `max` (either side that touched the pool knows it).
    fn absorb(&mut self, other: ExecStats) {
        self.executed += other.executed;
        self.forward_diamonds += other.forward_diamonds;
        self.reverse_diamonds += other.reverse_diamonds;
        self.csc_diamonds += other.csc_diamonds;
        self.chunked_ops += other.chunked_ops;
        self.level_parallel_ops += other.level_parallel_ops;
        self.fixpoints += other.fixpoints;
        self.fixpoint_iters += other.fixpoint_iters;
        self.fixpoint_frontier_worlds += other.fixpoint_frontier_worlds;
        self.fixpoint_dense_passes += other.fixpoint_dense_passes;
        self.dispatch_cost_ns = self.dispatch_cost_ns.max(other.dispatch_cost_ns);
    }
}

/// How the executor resolves thread counts: the two-stage Auto work
/// gate, forced parallel (tests and benches pinning the pool paths
/// below the gate), or forced sequential (the benches' reference
/// timings above it). Orthogonal to [`DiamondMode`]: strategy choice
/// and parallelisation never influence each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Parallelism {
    Auto,
    Force,
    Off,
}

/// One in-progress fixpoint body during lowering: the frame of a µ/ν
/// binder whose body is still being lowered. Body ops intern into the
/// frame's own list and cons table — body ids are meaningless outside
/// their body, so nothing here may leak into (or read from) the plan
/// tables.
#[derive(Debug)]
struct Frame {
    /// Unique consing context of this binder *site*; see
    /// [`Lowerer::bodies_cons`].
    ctx: u32,
    /// The variable this frame's binder bound.
    var: std::sync::Arc<str>,
    ops: Vec<Op>,
    cons: FxHashMap<Op, u32>,
    /// External inputs imported so far (ids in the enclosing context).
    args: Vec<u32>,
    /// Enclosing-context id → local `Arg` op id, so one outer value is
    /// imported once however often it is referenced.
    arg_memo: FxHashMap<u32, u32>,
}

impl Frame {
    fn intern(&mut self, op: Op) -> u32 {
        if let Some(&id) = self.cons.get(&op) {
            return id;
        }
        let id =
            u32::try_from(self.ops.len()).expect("fixpoint bodies are capped at 2^32 instructions");
        self.cons.insert(op, id);
        self.ops.push(op);
        id
    }
}

/// Reusable lowering state: the instruction list, the structural
/// hash-cons table, and the pointer memo short-circuiting re-lowering
/// of `Arc`-shared subtrees.
#[derive(Debug, Default)]
struct Lowerer {
    ops: Vec<Op>,
    cons: FxHashMap<Op, u32>,
    ptr_memo: FxHashMap<*const FormulaKind, u32>,
    /// Completed fixpoint bodies, indexed by [`Op::Fixpoint`]'s
    /// payload. Nested bodies complete before their parents, so a
    /// body's nested `Fixpoint` ops always reference lower indices.
    bodies: Vec<FixBody>,
    /// Structural body dedup, keyed by *site context* as well as
    /// content: a body's args are ids in its enclosing context, so two
    /// structurally equal bodies may only merge when that context is
    /// shared (0 = the plan level, where args are always empty; each
    /// binder frame gets a fresh context id).
    bodies_cons: FxHashMap<(u32, FixBody), u32>,
    /// Open binder frames, innermost last. Empty outside fixpoint
    /// lowering — the fast path.
    frames: Vec<Frame>,
    /// Context-id allocator for frames (0 is reserved for the plan).
    next_ctx: u32,
    ast_nodes: usize,
    dedup_hits: usize,
}

impl Lowerer {
    /// The op behind `id` *in the current lowering context* (the
    /// innermost open frame, or the plan when no binder is open).
    fn op_at(&self, id: u32) -> Op {
        match self.frames.last() {
            Some(frame) => frame.ops[id as usize],
            None => self.ops[id as usize],
        }
    }

    fn intern(&mut self, op: Op) -> u32 {
        if let Some(frame) = self.frames.last_mut() {
            if frame.cons.contains_key(&op) {
                self.dedup_hits += 1;
            }
            return frame.intern(op);
        }
        if let Some(&id) = self.cons.get(&op) {
            self.dedup_hits += 1;
            return id;
        }
        let id = u32::try_from(self.ops.len()).expect("plans are capped at 2^32 instructions");
        self.cons.insert(op, id);
        self.ops.push(op);
        id
    }

    fn mk_not(&mut self, a: u32) -> u32 {
        match self.op_at(a) {
            Op::Not(inner) => {
                self.dedup_hits += 1;
                inner
            }
            Op::Top => self.intern(Op::Bottom),
            Op::Bottom => self.intern(Op::Top),
            _ => self.intern(Op::Not(a)),
        }
    }

    fn mk_and(&mut self, a: u32, b: u32) -> u32 {
        let (a, b) = (a.min(b), a.max(b));
        if a == b {
            self.dedup_hits += 1;
            return a;
        }
        match (self.op_at(a), self.op_at(b)) {
            (Op::Bottom, _) | (_, Op::Bottom) => self.intern(Op::Bottom),
            (Op::Top, _) => {
                self.dedup_hits += 1;
                b
            }
            (_, Op::Top) => {
                self.dedup_hits += 1;
                a
            }
            _ => self.intern(Op::And(a, b)),
        }
    }

    fn mk_or(&mut self, a: u32, b: u32) -> u32 {
        let (a, b) = (a.min(b), a.max(b));
        if a == b {
            self.dedup_hits += 1;
            return a;
        }
        match (self.op_at(a), self.op_at(b)) {
            (Op::Top, _) | (_, Op::Top) => self.intern(Op::Top),
            (Op::Bottom, _) => {
                self.dedup_hits += 1;
                b
            }
            (_, Op::Bottom) => {
                self.dedup_hits += 1;
                a
            }
            _ => self.intern(Op::Or(a, b)),
        }
    }

    /// Lowers a fixpoint variable reference: the accumulator read
    /// interns as [`Op::Var`] in its *binding* frame, then is imported
    /// down through every intervening frame as an [`Op::Arg`] — each
    /// body only ever reads its own ops.
    fn lower_var(&mut self, name: &str) -> Result<u32, LogicError> {
        let Some(fi) = self.frames.iter().rposition(|f| *f.var == *name) else {
            return Err(LogicError::UnboundVariable { name: name.to_string() });
        };
        let mut id = self.frames[fi].intern(Op::Var);
        for i in fi + 1..self.frames.len() {
            let frame = &mut self.frames[i];
            id = match frame.arg_memo.get(&id) {
                Some(&local) => local,
                None => {
                    let k = u32::try_from(frame.args.len())
                        .expect("fixpoint bodies are capped at 2^32 external inputs");
                    frame.args.push(id);
                    let local = frame.intern(Op::Arg(k));
                    frame.arg_memo.insert(id, local);
                    local
                }
            };
        }
        Ok(id)
    }

    /// Lowers a µ/ν binder: opens a fresh frame, lowers the body into
    /// it, and interns the completed body as one [`Op::Fixpoint`]
    /// instruction in the enclosing context.
    fn lower_fixpoint(
        &mut self,
        model: &Kripke,
        var: &std::sync::Arc<str>,
        body: &Formula,
        greatest: bool,
    ) -> Result<u32, LogicError> {
        self.next_ctx += 1;
        self.frames.push(Frame {
            ctx: self.next_ctx,
            var: std::sync::Arc::clone(var),
            ops: Vec::new(),
            cons: FxHashMap::default(),
            args: Vec::new(),
            arg_memo: FxHashMap::default(),
        });
        // Pop the frame even when the body fails to lower: a
        // ModelChecker's Lowerer outlives errors.
        let root = match self.lower(model, body) {
            Ok(root) => root,
            Err(e) => {
                self.frames.pop();
                return Err(e);
            }
        };
        let frame = self.frames.pop().expect("pushed above");
        let fix = FixBody { greatest, ops: frame.ops, root, args: frame.args };
        let site_ctx = self.frames.last().map_or(0, |f| f.ctx);
        let b = match self.bodies_cons.get(&(site_ctx, fix.clone())) {
            Some(&b) => {
                self.dedup_hits += 1;
                b
            }
            None => {
                let b = u32::try_from(self.bodies.len()).expect("body indices fit u32");
                self.bodies_cons.insert((site_ctx, fix.clone()), b);
                self.bodies.push(fix);
                b
            }
        };
        Ok(self.intern(Op::Fixpoint(b)))
    }

    fn lower(&mut self, model: &Kripke, formula: &Formula) -> Result<u32, LogicError> {
        let key = formula.kind() as *const FormulaKind;
        // The pointer memo holds plan-context ids of (necessarily
        // closed) subtrees lowered outside every binder, so it is
        // sound to consult — and grow — only when no frame is open: a
        // body-local id is meaningless elsewhere, and inside a frame
        // even a closed subtree lowers to frame-local ops.
        if self.frames.is_empty() {
            if let Some(&id) = self.ptr_memo.get(&key) {
                self.dedup_hits += 1;
                return Ok(id);
            }
        }
        self.ast_nodes += 1;
        let id = match formula.kind() {
            FormulaKind::Top => self.intern(Op::Top),
            FormulaKind::Bottom => self.intern(Op::Bottom),
            FormulaKind::Prop(d) => self.intern(Op::Prop(*d)),
            FormulaKind::Not(a) => {
                let a = self.lower(model, a)?;
                self.mk_not(a)
            }
            FormulaKind::And(a, b) => {
                let a = self.lower(model, a)?;
                let b = self.lower(model, b)?;
                self.mk_and(a, b)
            }
            FormulaKind::Or(a, b) => {
                let a = self.lower(model, a)?;
                let b = self.lower(model, b)?;
                self.mk_or(a, b)
            }
            FormulaKind::Diamond { index, grade, inner } => {
                if index.family() != model.variant().family() {
                    return Err(LogicError::FamilyMismatch {
                        expected: model.variant().family(),
                        found: index.family(),
                    });
                }
                let inner = self.lower(model, inner)?;
                if *grade == 0 {
                    // ⟨α⟩≥0 φ is vacuously true, stored relation or not.
                    self.intern(Op::Top)
                } else {
                    match model.relation_id(*index) {
                        None => self.intern(Op::Bottom),
                        // ⟨α⟩≥k ⊥ has no satisfying successor for k ≥ 1.
                        Some(_) if self.op_at(inner) == Op::Bottom => self.intern(Op::Bottom),
                        Some(r) => self.intern(Op::Diamond {
                            rel: u32::try_from(r).expect("relation ids fit u32"),
                            grade: *grade,
                            inner,
                        }),
                    }
                }
            }
            FormulaKind::Var(name) => self.lower_var(name)?,
            FormulaKind::Mu { var, body } => self.lower_fixpoint(model, var, body, false)?,
            FormulaKind::Nu { var, body } => self.lower_fixpoint(model, var, body, true)?,
        };
        if self.frames.is_empty() {
            self.ptr_memo.insert(key, id);
        }
        Ok(id)
    }
}

/// A compiled evaluation plan for one model: a topologically ordered,
/// hash-consed instruction list with recycled output slots, one root
/// per input formula.
///
/// A plan resolves relation ids and folds against the model it was
/// compiled for; executing it against any other model is a logic error
/// (sizes are asserted, contents are the caller's contract).
///
/// # Examples
///
/// ```
/// use portnum_graph::generators;
/// use portnum_logic::plan::Plan;
/// use portnum_logic::{Formula, Kripke, ModalIndex};
///
/// let k = Kripke::k_mm(&generators::star(3));
/// // Two structurally equal diamonds that share no memory…
/// let a = Formula::diamond(ModalIndex::Any, &Formula::prop(1));
/// let b = Formula::diamond(ModalIndex::Any, &Formula::prop(1));
/// let plan = Plan::compile_suite(&k, [&a, &b])?;
/// // …lower to the same instructions.
/// assert!(plan.stats().instructions < plan.stats().ast_nodes);
/// let truth = plan.execute(&k);
/// assert_eq!(truth[0], truth[1]);
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Plan {
    n: usize,
    ops: Vec<Op>,
    /// Fixpoint bodies, indexed by [`Op::Fixpoint`] payloads (possibly
    /// including bodies orphaned by folds; body ids are not compacted
    /// — a dead body is never executed, and bodies are small).
    bodies: Vec<FixBody>,
    /// Output slot of each instruction.
    dst: Vec<u32>,
    slot_count: usize,
    /// Instruction ids grouped by DAG level (ascending id within a
    /// level); level `l` is `sched[level_bounds[l]..level_bounds[l+1]]`.
    /// A valid topological order, and the executor's schedule.
    sched: Vec<u32>,
    level_bounds: Vec<usize>,
    /// Root instruction of each input formula, in input order.
    roots: Vec<u32>,
    stats: PlanStats,
}

impl Plan {
    /// Compiles a single formula against `model`.
    ///
    /// # Examples
    ///
    /// ```
    /// use portnum_graph::generators;
    /// use portnum_logic::{parse, Kripke, Plan};
    ///
    /// // "some neighbour has degree 1" — true exactly at the centre.
    /// let k = Kripke::k_mm(&generators::star(3));
    /// let plan = Plan::compile(&k, &parse("<*,*> q1")?)?;
    /// let truths = plan.execute(&k);
    /// assert_eq!(truths[0].iter_ones().collect::<Vec<_>>(), vec![0]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::FamilyMismatch`] if the formula uses
    /// modalities from a different index family than the model.
    pub fn compile(model: &Kripke, formula: &Formula) -> Result<Plan, LogicError> {
        Plan::compile_suite(model, std::iter::once(formula))
    }

    /// Compiles a suite of formulas sharing `model` into one plan;
    /// subformulas shared *structurally* across the suite are lowered
    /// and executed once. Roots come out in input order.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::FamilyMismatch`] as [`Plan::compile`].
    pub fn compile_suite<'a, I>(model: &Kripke, formulas: I) -> Result<Plan, LogicError>
    where
        I: IntoIterator<Item = &'a Formula>,
    {
        let mut lw = Lowerer::default();
        let mut roots = Vec::new();
        for f in formulas {
            roots.push(lw.lower(model, f)?);
        }
        Ok(Plan::finish(model.len(), lw.ops, lw.bodies, roots, lw.ast_nodes, lw.dedup_hits))
    }

    /// Compacts to the live instructions, assigns recycled slots, and
    /// freezes the statistics. Fixpoint bodies are self-contained
    /// (body-local ids, no plan references either way), so compaction
    /// never rewrites them.
    fn finish(
        n: usize,
        ops: Vec<Op>,
        bodies: Vec<FixBody>,
        roots: Vec<u32>,
        ast_nodes: usize,
        dedup: usize,
    ) -> Plan {
        // Reachability from the roots: folds may have orphaned subtrees.
        let mut live = vec![false; ops.len()];
        let mut stack: Vec<u32> = roots.clone();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut live[id as usize], true) {
                continue;
            }
            ops[id as usize].for_each_operand(|a| stack.push(a));
        }

        // Order-preserving compaction (operands precede consumers, so
        // the remap is always populated before it is read).
        let mut remap = vec![u32::MAX; ops.len()];
        let mut compact: Vec<Op> = Vec::with_capacity(ops.len());
        for (id, op) in ops.into_iter().enumerate() {
            if !live[id] {
                continue;
            }
            let rewritten = match op {
                Op::Top | Op::Bottom | Op::Prop(_) | Op::Fixpoint(_) => op,
                Op::Not(a) => Op::Not(remap[a as usize]),
                Op::And(a, b) => Op::And(remap[a as usize], remap[b as usize]),
                Op::Or(a, b) => Op::Or(remap[a as usize], remap[b as usize]),
                Op::Diamond { rel, grade, inner } => {
                    Op::Diamond { rel, grade, inner: remap[inner as usize] }
                }
                Op::Var | Op::Arg(_) => unreachable!("Var/Arg live only inside fixpoint bodies"),
            };
            remap[id] = compact.len() as u32;
            compact.push(rewritten);
        }
        let roots: Vec<u32> = roots.iter().map(|&r| remap[r as usize]).collect();

        // DAG levels: leaves at 0, every instruction one past its
        // deepest operand. Instructions of a level share no data
        // dependency, so a level is the executor's unit of
        // instruction-level parallelism.
        let m = compact.len();
        let mut level = vec![0u32; m];
        let mut num_levels = 0usize;
        for (id, op) in compact.iter().enumerate() {
            let mut l = 0u32;
            op.for_each_operand(|a| l = l.max(level[a as usize] + 1));
            level[id] = l;
            num_levels = num_levels.max(l as usize + 1);
        }
        // Counting sort of instruction ids by level (stable, so ids
        // ascend within a level).
        let mut level_bounds = vec![0usize; num_levels + 1];
        for &l in &level {
            level_bounds[l as usize + 1] += 1;
        }
        for l in 0..num_levels {
            level_bounds[l + 1] += level_bounds[l];
        }
        let mut cursor = level_bounds.clone();
        let mut sched = vec![0u32; m];
        for (id, &l) in level.iter().enumerate() {
            sched[cursor[l as usize]] = id as u32;
            cursor[l as usize] += 1;
        }

        // Liveness by level: a slot is reusable starting one level
        // after its deepest reader (roots are pinned), so within a
        // level no destination ever aliases a sibling's operand — the
        // invariant that makes level-parallel execution sound.
        let mut free_level = vec![0u32; m];
        for (id, op) in compact.iter().enumerate() {
            op.for_each_operand(|a| {
                free_level[a as usize] = free_level[a as usize].max(level[id]);
            });
        }
        for &r in &roots {
            free_level[r as usize] = u32::MAX;
        }
        let mut free_bucket: Vec<Vec<u32>> = vec![Vec::new(); num_levels];
        for (id, &fl) in free_level.iter().enumerate() {
            if fl != u32::MAX {
                free_bucket[fl as usize].push(id as u32);
            }
        }

        let mut dst = vec![0u32; m];
        let mut free: Vec<u32> = Vec::new();
        let mut slot_count = 0usize;
        for l in 0..num_levels {
            if l > 0 {
                for &a in &free_bucket[l - 1] {
                    free.push(dst[a as usize]);
                }
            }
            for &id in &sched[level_bounds[l]..level_bounds[l + 1]] {
                dst[id as usize] = free.pop().unwrap_or_else(|| {
                    slot_count += 1;
                    (slot_count - 1) as u32
                });
            }
        }

        let stats = PlanStats {
            ast_nodes,
            instructions: compact.len(),
            dedup_hits: dedup,
            slots: slot_count,
        };
        Plan { n, ops: compact, bodies, dst, slot_count, sched, level_bounds, roots, stats }
    }

    /// Lowering statistics (instruction, dedup, and slot counts).
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// Number of live instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the plan has no instructions (empty suite).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of input formulas (= result vectors per execution).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// The plan's total per-instruction work estimate against `model`,
    /// in the touched-words currency
    /// [`ExecBudget`](portnum_graph::resilience::ExecBudget) meters —
    /// the same
    /// figure the Auto work gate and
    /// [`ModelChecker::estimate_work`] price with. Admission layers use
    /// this to cost a compiled suite before committing an executor to
    /// it.
    pub fn estimated_work(&self, model: &Kripke) -> usize {
        self.ops.iter().map(|&op| op_work_for(model, &self.bodies, op)).sum()
    }

    /// Executes with [`DiamondMode::Auto`]; returns one truth vector
    /// per input formula, in input order. Heavy instructions (and wide
    /// DAG levels) run on the persistent worker pool — see the module
    /// docs — while small plans stay on the sequential fast path.
    ///
    /// # Panics
    ///
    /// Panics if `model` has a different number of worlds than the
    /// model the plan was compiled for (compile and execute against the
    /// same model).
    pub fn execute(&self, model: &Kripke) -> Vec<Bitset> {
        self.execute_with(model, DiamondMode::Auto).0
    }

    /// Executes the plan level by level with the given diamond
    /// strategy, returning the root truth vectors and the execution
    /// statistics.
    ///
    /// # Panics
    ///
    /// See [`Plan::execute`].
    pub fn execute_with(&self, model: &Kripke, mode: DiamondMode) -> (Vec<Bitset>, ExecStats) {
        self.execute_impl(model, mode, Parallelism::Auto, &ExecControl::unrestricted())
            .expect("unrestricted execution cannot be interrupted")
    }

    /// Control-aware executor: polls `ctl` at every instruction
    /// boundary (and, through the pool, at every chunk boundary of a
    /// level-parallel step), so cancel-to-error latency is bounded by
    /// one instruction/chunk granule. Budget semantics:
    ///
    /// * the touched-work ceiling accumulates the executor's
    ///   per-instruction work estimate — the same currency the Auto
    ///   diamond cost model and the parallel work gate already price —
    ///   and trips [`Interrupted`] when crossed;
    /// * the slot-words ceiling *degrades*: when resident slot storage
    ///   plus the parallel paths' per-thread partials would exceed it,
    ///   execution stays sequential (no partials) instead of failing.
    ///
    /// On `Err`, nothing is returned and nothing was published: all
    /// intermediate state is call-local, so an immediate retry is
    /// bit-identical to a run that was never interrupted.
    ///
    /// # Errors
    ///
    /// The first [`Interrupted`] observed at any granule boundary.
    ///
    /// # Panics
    ///
    /// See [`Plan::execute`].
    pub fn execute_controlled(
        &self,
        model: &Kripke,
        mode: DiamondMode,
        ctl: &ExecControl,
    ) -> Result<(Vec<Bitset>, ExecStats), Interrupted> {
        self.execute_impl(model, mode, Parallelism::Auto, ctl)
    }

    /// Runs the executor with every parallel path forced on (both
    /// chunking axes, regardless of model size). Exists so tests and
    /// benches can pin the pool-driven executor against the sequential
    /// one; use [`Plan::execute`] / [`Plan::execute_with`] everywhere
    /// else.
    #[doc(hidden)]
    pub fn execute_forced_parallel(&self, model: &Kripke, mode: DiamondMode) -> (Vec<Bitset>, ExecStats) {
        self.execute_impl(model, mode, Parallelism::Force, &ExecControl::unrestricted())
            .expect("unrestricted execution cannot be interrupted")
    }

    /// Runs the executor with every parallel path forced *off* (one
    /// thread regardless of work), so benches can measure the
    /// sequential reference at sizes the Auto work gate would
    /// parallelise — the counterpart of
    /// [`Plan::execute_forced_parallel`] on the other side of the
    /// gate. Bit-identical output to every other mode.
    #[doc(hidden)]
    pub fn execute_forced_sequential(
        &self,
        model: &Kripke,
        mode: DiamondMode,
    ) -> (Vec<Bitset>, ExecStats) {
        self.execute_impl(model, mode, Parallelism::Off, &ExecControl::unrestricted())
            .expect("unrestricted execution cannot be interrupted")
    }

    /// [`Plan::execute_forced_parallel`] with a control — the chaos
    /// tests drive the pool-backed paths under cancellation with this.
    #[doc(hidden)]
    pub fn execute_forced_parallel_controlled(
        &self,
        model: &Kripke,
        mode: DiamondMode,
        ctl: &ExecControl,
    ) -> Result<(Vec<Bitset>, ExecStats), Interrupted> {
        self.execute_impl(model, mode, Parallelism::Force, ctl)
    }

    /// Estimated work of one instruction, in the same "words of work"
    /// currency as [`threads_for`]'s gate (refinement signature words
    /// ≈ a few ns each): connectives are word-parallel (`n/64`),
    /// `Prop` compares one degree per world, diamonds sweep every
    /// world plus every stored successor pair.
    fn op_work(&self, model: &Kripke, id: u32) -> usize {
        op_work_for(model, &self.bodies, self.ops[id as usize])
    }

    fn execute_impl(
        &self,
        model: &Kripke,
        mode: DiamondMode,
        par: Parallelism,
        ctl: &ExecControl,
    ) -> Result<(Vec<Bitset>, ExecStats), Interrupted> {
        assert_eq!(
            model.len(),
            self.n,
            "plan executed against a model of a different size than it was compiled for"
        );
        ctl.check()?;
        // Slot-words budget: resident storage is the recycled slots;
        // the parallel paths add up to one partial bitset per pool
        // thread (reverse/CSC gather partials, level outputs). When
        // that sum would cross the ceiling, degrade to sequential —
        // the query still answers, just without the partials.
        let word_len = self.n.div_ceil(64);
        let parallel_ok = !ctl
            .budget
            .slots_over(self.slot_count * word_len + (encode_threads().max(2) + 1) * word_len);
        let threads = |work: usize| {
            if !parallel_ok {
                return 1;
            }
            match par {
                Parallelism::Off => 1,
                Parallelism::Force => encode_threads().max(2),
                Parallelism::Auto => threads_for(work),
            }
        };
        let mut touched = 0usize;
        let mut stats = ExecStats::default();
        let mut slots: Vec<Bitset> = (0..self.slot_count).map(|_| Bitset::default()).collect();
        for l in 0..self.level_bounds.len() - 1 {
            let ids = &self.sched[self.level_bounds[l]..self.level_bounds[l + 1]];
            let level_work: usize = ids.iter().map(|&id| self.op_work(model, id)).sum();
            let heaviest: usize =
                ids.iter().map(|&id| self.op_work(model, id)).max().unwrap_or(0);
            // Instruction-level parallelism only when no sibling
            // dominates the level: a level that is mostly one heavy
            // diamond speeds up more by splitting that instruction's
            // world range (below) than by running its cheap siblings
            // alongside it. Levels carrying a fixpoint stay on the
            // sequential path: the iterate-until-stable loop chunks
            // its own body ops over the pool, and a pool worker must
            // never dispatch a nested pool call.
            if ids.len() > 1
                && threads(level_work) > 1
                && heaviest * 2 <= level_work
                && !ids.iter().any(|&id| matches!(self.ops[id as usize], Op::Fixpoint(_)))
            {
                fail::fail_point!("plan-instr");
                touched += level_work;
                ctl.check_work(touched)?;
                self.exec_level_parallel(model, mode, ids, &mut slots, &mut stats, ctl)?;
                continue;
            }
            for &id in ids {
                // Chaos site at the instruction boundary: all executor
                // state is call-local, so a panic or interruption here
                // publishes nothing.
                fail::fail_point!("plan-instr");
                touched += self.op_work(model, id);
                ctl.check_work(touched)?;
                let dst = self.dst[id as usize] as usize;
                // Take the output slot so operand slots stay
                // borrowable; every arm fully overwrites it (recycled
                // contents are stale by design).
                let mut out = std::mem::take(&mut slots[dst]);
                let op = self.ops[id as usize];
                if let Op::Fixpoint(b) = op {
                    eval_fixpoint_into(
                        model,
                        mode,
                        &self.bodies,
                        b,
                        &|a| &slots[self.dst[a as usize] as usize],
                        &mut out,
                        &mut stats,
                        ctl,
                        &threads,
                    )?;
                    stats.executed += 1;
                    slots[dst] = out;
                    continue;
                }
                let op_threads = match op {
                    Op::Prop(_) | Op::Diamond { .. } => threads(self.op_work(model, id)),
                    _ => 1,
                };
                if op_threads > 1 {
                    eval_op_chunked(
                        model,
                        mode,
                        op,
                        |a| &slots[self.dst[a as usize] as usize],
                        &mut out,
                        &mut stats,
                        op_threads,
                    );
                } else {
                    eval_op_into(
                        model,
                        mode,
                        op,
                        |a| &slots[self.dst[a as usize] as usize],
                        &mut out,
                        &mut stats,
                    );
                }
                stats.executed += 1;
                slots[dst] = out;
            }
        }

        // Move each root's vector out of its slot; duplicate roots
        // (identical formulas in the suite) clone the first copy.
        let mut results: Vec<Bitset> = Vec::with_capacity(self.roots.len());
        let mut first_owner: FxHashMap<u32, usize> = FxHashMap::default();
        for &r in &self.roots {
            let slot = self.dst[r as usize];
            match first_owner.get(&slot) {
                Some(&i) => results.push(results[i].clone()),
                None => {
                    first_owner.insert(slot, results.len());
                    results.push(std::mem::take(&mut slots[slot as usize]));
                }
            }
        }
        // Record the coordination cost the work gate priced this run
        // against — only when the pool actually dispatched, so a
        // sequential run reports 0 and stats stay engine-faithful.
        if stats.chunked_ops > 0 || stats.level_parallel_ops > 0 {
            stats.dispatch_cost_ns = WorkerPool::global().dispatch_cost_ns();
        }
        Ok((results, stats))
    }

    /// Executes one DAG level's instructions concurrently, one pool
    /// chunk per instruction. Sound because the level-aware slot
    /// allocator guarantees the level's destinations are pairwise
    /// distinct and disjoint from every operand slot still live at
    /// this level; each chunk owns exactly its destination.
    fn exec_level_parallel(
        &self,
        model: &Kripke,
        mode: DiamondMode,
        ids: &[u32],
        slots: &mut [Bitset],
        stats: &mut ExecStats,
        ctl: &ExecControl,
    ) -> Result<(), Interrupted> {
        let outs: Vec<Mutex<(Bitset, ExecStats)>> = ids
            .iter()
            .map(|&id| {
                let taken = std::mem::take(&mut slots[self.dst[id as usize] as usize]);
                Mutex::new((taken, ExecStats::default()))
            })
            .collect();
        let slots_ref: &[Bitset] = slots;
        WorkerPool::global().run_controlled(ids.len(), ctl, &|i| {
            let mut guard = outs[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let (out, chunk_stats) = &mut *guard;
            eval_op_into(
                model,
                mode,
                self.ops[ids[i] as usize],
                |a| &slots_ref[self.dst[a as usize] as usize],
                out,
                chunk_stats,
            );
        })?;
        for (&id, out) in ids.iter().zip(outs) {
            let (out, chunk_stats) =
                out.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
            slots[self.dst[id as usize] as usize] = out;
            stats.absorb(chunk_stats);
            stats.executed += 1;
            stats.level_parallel_ops += 1;
        }
        Ok(())
    }
}

/// Estimated work of one instruction, in the same "words of work"
/// currency as [`threads_for`]'s gate (refinement signature words
/// ≈ a few ns each): connectives are word-parallel (`n/64`),
/// `Prop` compares one degree per world, diamonds sweep every
/// world plus every stored successor pair. A fixpoint prices at twice
/// its body's per-iteration work plus an `n/8` flip term: frontier
/// iteration flips each world at most once (monotone bodies), so
/// total work is a small multiple of one dense pass plus the flip
/// volume — this is what makes [`ModelChecker::estimate_work`]
/// iteration-aware for serve admission. Shared by [`Plan`]'s executor
/// and [`ModelChecker`]'s touched-work budget so both price budgets
/// in one currency.
fn op_work_for(model: &Kripke, bodies: &[FixBody], op: Op) -> usize {
    let n = model.len();
    match op {
        Op::Prop(_) => n / 8,
        Op::Diamond { rel, .. } => {
            let (_, targets) = model.relation_rows(rel as usize);
            (n + targets.len()) / 4
        }
        Op::Fixpoint(b) => {
            let per_iter: usize = bodies[b as usize]
                .ops
                .iter()
                .map(|&body_op| op_work_for(model, bodies, body_op))
                .sum();
            2 * per_iter + n / 8
        }
        _ => n / 64,
    }
}

/// Evaluates one instruction into `out` (a full overwrite), resolving
/// operand truth vectors through `operand`. The single evaluation
/// engine shared by [`Plan::execute_with`] (slot-backed operands) and
/// [`ModelChecker`] (`Rc`-cached operands), so the two cannot drift.
fn eval_op_into<'a>(
    model: &Kripke,
    mode: DiamondMode,
    op: Op,
    operand: impl Fn(u32) -> &'a Bitset,
    out: &mut Bitset,
    stats: &mut ExecStats,
) {
    let n = model.len();
    match op {
        Op::Top => out.assign_ones(n),
        Op::Bottom => out.assign_zeros(n),
        Op::Prop(d) => out.assign_from_fn(n, |v| model.degree(v) == d),
        Op::Not(a) => {
            out.copy_from(operand(a));
            out.not_assign();
        }
        Op::And(a, b) => {
            out.copy_from(operand(a));
            out.and_assign(operand(b));
        }
        Op::Or(a, b) => {
            out.copy_from(operand(a));
            out.or_assign(operand(b));
        }
        Op::Diamond { rel, grade, inner } => {
            diamond_into(model, mode, rel as usize, grade, operand(inner), out, stats);
        }
        Op::Var | Op::Arg(_) => {
            unreachable!("Var/Arg are body-local leaves resolved by the fixpoint executor")
        }
        Op::Fixpoint(_) => {
            unreachable!("fixpoint instructions dispatch through eval_fixpoint_into")
        }
    }
}

/// One dense evaluation pass over a fixpoint body: every op, every
/// world, in body id order (operands precede consumers) — the same
/// engine as the straight-line executor, with `Var` reading the
/// current accumulator and `Arg` the resolved external inputs. Heavy
/// `Prop`/`Diamond` body ops chunk over the pool exactly as top-level
/// instructions do.
#[allow(clippy::too_many_arguments)]
fn body_dense_pass(
    model: &Kripke,
    mode: DiamondMode,
    bodies: &[FixBody],
    body: &FixBody,
    x: &Bitset,
    arg_vals: &[&Bitset],
    vals: &mut [Bitset],
    stats: &mut ExecStats,
    ctl: &ExecControl,
    threads: &(dyn Fn(usize) -> usize + Sync),
) -> Result<(), Interrupted> {
    for i in 0..body.ops.len() {
        let op = body.ops[i];
        // Take the value slot so sibling slots stay borrowable; every
        // arm fully overwrites it.
        let mut out = std::mem::take(&mut vals[i]);
        match op {
            Op::Var => out.copy_from(x),
            Op::Arg(k) => out.copy_from(arg_vals[k as usize]),
            Op::Fixpoint(b) => {
                eval_fixpoint_into(
                    model,
                    mode,
                    bodies,
                    b,
                    &|a| &vals[a as usize],
                    &mut out,
                    stats,
                    ctl,
                    threads,
                )?;
            }
            _ => {
                let op_threads = match op {
                    Op::Prop(_) | Op::Diamond { .. } => threads(op_work_for(model, bodies, op)),
                    _ => 1,
                };
                if op_threads > 1 {
                    eval_op_chunked(model, mode, op, |a| &vals[a as usize], &mut out, stats, op_threads);
                } else {
                    eval_op_into(model, mode, op, |a| &vals[a as usize], &mut out, stats);
                }
            }
        }
        vals[i] = out;
    }
    Ok(())
}

/// One frontier pass over a fixpoint body: repairs the persistent
/// per-op values in place, re-evaluating each op only at its
/// *candidate* worlds — those whose value can have moved given the
/// flips recorded one operand upstream (`x_changed`, the accumulator's
/// flips, seeds the `Var` op). Semantically
/// `eval_op_into(..).get(v)` per candidate, so the repaired values are
/// bit-identical to a dense pass — the contract the differential µ
/// suite pins. Flips land in `changed[i]` (ascending, deduplicated);
/// `changed[body.root]` is the accumulator's next flip set.
#[allow(clippy::too_many_arguments)]
fn body_frontier_pass(
    model: &Kripke,
    mode: DiamondMode,
    bodies: &[FixBody],
    body: &FixBody,
    x: &Bitset,
    x_changed: &[u32],
    vals: &mut [Bitset],
    changed: &mut [Vec<u32>],
    stats: &mut ExecStats,
    ctl: &ExecControl,
    threads: &(dyn Fn(usize) -> usize + Sync),
) -> Result<(), Interrupted> {
    let n = model.len();
    let dense = |d: usize| d * 4 >= n;
    for i in 0..body.ops.len() {
        let op = body.ops[i];
        // A nested fixpoint re-runs whenever any of its external
        // inputs flipped (its own executor starts dense again — its
        // accumulator restarts from ⊥/⊤, so stale per-iteration state
        // cannot be reused); the flips its consumers need fall out of
        // a word diff.
        if let Op::Fixpoint(b) = op {
            let stale = bodies[b as usize].args.iter().any(|&a| !changed[a as usize].is_empty());
            let (prev_changed, rest_changed) = changed.split_at_mut(i);
            let flips = &mut rest_changed[0];
            flips.clear();
            if stale {
                let (prev, rest) = vals.split_at_mut(i);
                let cur = &mut rest[0];
                let mut next = Bitset::default();
                eval_fixpoint_into(
                    model,
                    mode,
                    bodies,
                    b,
                    &|a| &prev[a as usize],
                    &mut next,
                    stats,
                    ctl,
                    threads,
                )?;
                cur.for_each_difference(&next, |v| flips.push(v as u32));
                *cur = next;
            }
            let _ = prev_changed;
            continue;
        }
        // Candidate dirty worlds, ascending and deduplicated.
        let candidates: Vec<u32> = match op {
            // Inputs are fixed for the whole fixpoint run: the model
            // does not change between iterations, and external args
            // are resolved once at entry.
            Op::Top | Op::Bottom | Op::Prop(_) | Op::Arg(_) => Vec::new(),
            Op::Var => x_changed.to_vec(),
            Op::Not(a) => changed[a as usize].clone(),
            Op::And(a, b) | Op::Or(a, b) => {
                let mut c: Vec<u32> =
                    changed[a as usize].iter().chain(&changed[b as usize]).copied().collect();
                c.sort_unstable();
                c.dedup();
                c
            }
            Op::Diamond { rel, inner, .. } => {
                let inner_changed = &changed[inner as usize];
                let mut c = Vec::new();
                if !inner_changed.is_empty() {
                    let csc = model.predecessors_csc(rel as usize);
                    for &w in inner_changed {
                        c.extend_from_slice(csc.row(w as usize));
                    }
                    c.sort_unstable();
                    c.dedup();
                }
                c
            }
            Op::Fixpoint(_) => unreachable!("handled above"),
        };
        let (_, rest_changed) = changed.split_at_mut(i);
        let flips = &mut rest_changed[0];
        flips.clear();
        if candidates.is_empty() {
            continue;
        }
        let (prev, rest) = vals.split_at_mut(i);
        let cur = &mut rest[0];
        if dense(candidates.len()) {
            // Past a quarter of the universe the vectorized sweep
            // beats point lookups — the same crossover as delta
            // repair; the flips still come cheap off a word diff.
            stats.fixpoint_frontier_worlds += n;
            let mut next = Bitset::default();
            match op {
                Op::Var => next.copy_from(x),
                _ => eval_op_into(model, mode, op, |a| &prev[a as usize], &mut next, stats),
            }
            cur.for_each_difference(&next, |v| flips.push(v as u32));
            *cur = next;
            continue;
        }
        stats.fixpoint_frontier_worlds += candidates.len();
        // One dispatch per op, tight point loops per candidate —
        // mirroring the delta-repair arms.
        match op {
            Op::Var => {
                for &v in &candidates {
                    let now = x.get(v as usize);
                    if cur.get(v as usize) != now {
                        cur.set(v as usize, now);
                        flips.push(v);
                    }
                }
            }
            Op::Not(a) => {
                let a = &prev[a as usize];
                for &v in &candidates {
                    let now = !a.get(v as usize);
                    if cur.get(v as usize) != now {
                        cur.set(v as usize, now);
                        flips.push(v);
                    }
                }
            }
            Op::And(a, b) => {
                let (a, b) = (&prev[a as usize], &prev[b as usize]);
                for &v in &candidates {
                    let now = a.get(v as usize) && b.get(v as usize);
                    if cur.get(v as usize) != now {
                        cur.set(v as usize, now);
                        flips.push(v);
                    }
                }
            }
            Op::Or(a, b) => {
                let (a, b) = (&prev[a as usize], &prev[b as usize]);
                for &v in &candidates {
                    let now = a.get(v as usize) || b.get(v as usize);
                    if cur.get(v as usize) != now {
                        cur.set(v as usize, now);
                        flips.push(v);
                    }
                }
            }
            Op::Diamond { rel, grade, inner } => {
                let sat = &prev[inner as usize];
                for &v in &candidates {
                    let mut count = 0usize;
                    let mut now = false;
                    for &w in model.successors_dense(rel as usize, v as usize) {
                        if sat.get(w as usize) {
                            count += 1;
                            if count >= grade {
                                now = true;
                                break;
                            }
                        }
                    }
                    if cur.get(v as usize) != now {
                        cur.set(v as usize, now);
                        flips.push(v);
                    }
                }
            }
            Op::Top | Op::Bottom | Op::Prop(_) | Op::Arg(_) | Op::Fixpoint(_) => {
                unreachable!("ops without candidates are skipped above")
            }
        }
    }
    Ok(())
}

/// Iterate-until-stable evaluation of one [`Op::Fixpoint`]
/// instruction: Kleene iteration of `bodies[b]` from ⊥ (µ) or ⊤ (ν),
/// with the first iteration dense and every later one a frontier pass
/// (unless `PORTNUM_FIXPOINT=dense` pins the baseline) — see the
/// module docs. The accumulator is advanced by applying the root op's
/// recorded flips, so a frontier iteration costs O(frontier); the
/// empty flip set is the convergence test. `arg_of` resolves the
/// body's external inputs in the enclosing context (plan slots,
/// checker caches, or an enclosing body's value store — never invoked
/// for a top-level fixpoint, whose body is closed).
///
/// Bit-identical to the naive Kleene reference: every pass computes
/// exactly `body(Xᵢ)` (ops are deterministic functions of their
/// operands, and point repair re-evaluates the same function
/// per world), and both engines stop at the first `Xᵢ₊₁ = Xᵢ`.
///
/// # Errors
///
/// [`Interrupted`] when `ctl` trips — checked every iteration, so
/// cancel latency is bounded by one body pass.
#[allow(clippy::too_many_arguments)]
fn eval_fixpoint_into<'a>(
    model: &Kripke,
    mode: DiamondMode,
    bodies: &[FixBody],
    b: u32,
    arg_of: &dyn Fn(u32) -> &'a Bitset,
    out: &mut Bitset,
    stats: &mut ExecStats,
    ctl: &ExecControl,
    threads: &(dyn Fn(usize) -> usize + Sync),
) -> Result<(), Interrupted> {
    let body = &bodies[b as usize];
    let n = model.len();
    let arg_vals: Vec<&Bitset> = body.args.iter().map(|&a| arg_of(a)).collect();
    let mut vals: Vec<Bitset> = (0..body.ops.len()).map(|_| Bitset::default()).collect();
    let mut changed: Vec<Vec<u32>> = vec![Vec::new(); body.ops.len()];
    let mut x = if body.greatest { Bitset::ones(n) } else { Bitset::zeros(n) };
    let mut x_changed: Vec<u32> = Vec::new();
    let frontier = fixpoint_override() == FixpointOverride::Frontier;
    stats.fixpoints += 1;
    let mut iters = 0usize;
    loop {
        // Chaos site at the iteration boundary: all iteration state is
        // call-local, so a panic or interruption mid-fixpoint
        // publishes nothing and a retry is bit-identical.
        fail::fail_point!("plan-fixpoint-iter");
        ctl.check()?;
        iters += 1;
        // Positivity is checked at construction, so a monotone body
        // converges within n + 1 root evaluations; anything more means
        // the accumulator oscillated.
        assert!(iters <= n + 2, "fixpoint failed to converge: body not monotone?");
        stats.fixpoint_iters += 1;
        if iters == 1 || !frontier {
            stats.fixpoint_dense_passes += 1;
            body_dense_pass(model, mode, bodies, body, &x, &arg_vals, &mut vals, stats, ctl, threads)?;
            x_changed.clear();
            x.for_each_difference(&vals[body.root as usize], |v| x_changed.push(v as u32));
        } else {
            body_frontier_pass(
                model, mode, bodies, body, &x, &x_changed, &mut vals, &mut changed, stats, ctl,
                threads,
            )?;
            x_changed.clear();
            x_changed.extend_from_slice(&changed[body.root as usize]);
        }
        if x_changed.is_empty() {
            break;
        }
        // Advance the accumulator by its flips — O(frontier), not
        // O(n), which is what keeps total fixpoint cost proportional
        // to flip volume instead of n × iterations.
        let root_val = &vals[body.root as usize];
        for &v in &x_changed {
            x.set(v as usize, root_val.get(v as usize));
        }
    }
    out.copy_from(&x);
    Ok(())
}

/// The three diamond implementations (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiamondImpl {
    Forward,
    Dense,
    Csc,
}

/// Picks the implementation of one diamond instruction — the single
/// decision point shared by the sequential and chunked diamond
/// evaluators, so a parallel run can never pick a different strategy
/// (and therefore different stats) than a sequential one.
///
/// The `Auto` cost model compares, in "entry ops":
///
/// * forward: `targets.len() + n` — the `assign_from_fn` sweep visits
///   every world even when its CSR row is empty (comparing against
///   `targets.len()` alone once made sparse relations over large
///   universes wrongly pick the forward path);
/// * dense reverse: `|‖φ‖| × row_words` word ORs, legal only for
///   grade 1 under the dense cap;
/// * CSC gather: `|‖φ‖|` row lookups plus the *actual* predecessor
///   entries of the satisfying worlds (read off the CSC bounds — this
///   is why the store is built before costing), plus `n/64` for the
///   grade-1 zeroing or `n` for the graded counts array.
///
/// Ties break toward forward, then dense. `PORTNUM_REVERSE` pins the
/// `Auto` arm (see [`reverse_override`]); explicit modes are taken
/// verbatim.
fn diamond_impl(
    model: &Kripke,
    mode: DiamondMode,
    rel: usize,
    grade: usize,
    sat: &Bitset,
    targets_len: usize,
) -> DiamondImpl {
    let dense_legal = grade == 1 && model.predecessor_matrix_words() <= reverse_word_cap();
    match mode {
        DiamondMode::Forward => DiamondImpl::Forward,
        DiamondMode::Csc => DiamondImpl::Csc,
        DiamondMode::Reverse => {
            if dense_legal {
                DiamondImpl::Dense
            } else {
                DiamondImpl::Csc
            }
        }
        DiamondMode::Auto => match reverse_override() {
            ReverseOverride::Off => DiamondImpl::Forward,
            ReverseOverride::Csc => DiamondImpl::Csc,
            ReverseOverride::Dense => {
                if dense_legal {
                    DiamondImpl::Dense
                } else {
                    DiamondImpl::Forward
                }
            }
            ReverseOverride::Auto => {
                let n = model.len();
                let ones = sat.count_ones();
                let forward_cost = targets_len + n;
                let dense_cost = if dense_legal {
                    ones * sat.words().len()
                } else {
                    usize::MAX
                };
                // CSC cost: the fixed part (row lookups + zeroing or
                // the counts array) plus the actual predecessor
                // entries of the satisfying worlds. The summation
                // stops — and the store is not even built — once the
                // running cost reaches the cheaper alternative: past
                // that point the winner cannot change, and a near-full
                // ‖φ‖ would otherwise pay O(|‖φ‖|) lookups per
                // execution just to re-learn that forward wins.
                let budget = forward_cost.min(dense_cost);
                let mut csc_cost = ones + if grade == 1 { n / 64 } else { n };
                if csc_cost < budget {
                    let csc = model.predecessors_csc(rel);
                    for u in sat.iter_ones() {
                        csc_cost += csc.row_len(u);
                        if csc_cost >= budget {
                            break;
                        }
                    }
                }
                if forward_cost <= dense_cost && forward_cost <= csc_cost {
                    DiamondImpl::Forward
                } else if dense_cost <= csc_cost {
                    DiamondImpl::Dense
                } else {
                    DiamondImpl::Csc
                }
            }
        },
    }
}

/// The CSC gather: `⟨α⟩≥g φ` computed from the predecessor lists of
/// the worlds satisfying `φ`. Grade 1 unions rows bit by bit; grade
/// ≥ 2 scatter-counts into a per-world array, inserting a world the
/// moment its count reaches the grade (duplicate stored edges count
/// once each, matching the forward walk's semantics).
fn csc_gather_into(
    csc: &CscAdjacency,
    grade: usize,
    sat: &Bitset,
    n: usize,
    out: &mut Bitset,
) {
    out.assign_zeros(n);
    if grade == 1 {
        for u in sat.iter_ones() {
            for &v in csc.row(u) {
                out.insert(v as usize);
            }
        }
    } else {
        let mut counts = vec![0u32; n];
        for u in sat.iter_ones() {
            for &v in csc.row(u) {
                let c = &mut counts[v as usize];
                *c += 1;
                if *c as usize == grade {
                    out.insert(v as usize);
                }
            }
        }
    }
}

/// The forward CSR diamond sweep of one world range, tiled over the
/// shared cache-block geometry ([`blocking`]): worlds are visited in
/// blocks of [`blocking::BLOCK_WORLDS`] so a block's row bounds and
/// output words stay L2-resident while its rows are walked, and the
/// row bounds (and the row targets half a distance behind) are
/// prefetched [`blocking::PREFETCH_AHEAD`] worlds ahead to hide their
/// miss latency behind the current rows' bit tests.
///
/// `words` must cover exactly `range` (whose start is a multiple of
/// 64, as every chunk splitter here guarantees). The sweep is the one
/// shared by the sequential evaluator (`range = 0..n`) and the
/// chunked one (a work-quantile world range), and is bit-identical to
/// a plain [`Bitset::assign_from_fn`] pass: blocks are visited in
/// ascending order, so the CSR cursor contract holds across block
/// seams, and prefetch is a pure hint.
fn forward_sweep_blocked(
    offsets: &[usize],
    targets: &[u32],
    grade: usize,
    sat_words: &[u64],
    range: Range<usize>,
    words: &mut [u64],
) {
    let mut start = offsets[range.start];
    let mut word_base = 0usize;
    for block in blocking::blocks(range.end - range.start) {
        let block = range.start + block.start..range.start + block.end;
        let block_words = (block.end - block.start).div_ceil(64);
        fill_words_from_fn(&mut words[word_base..word_base + block_words], block.clone(), |v| {
            blocking::prefetch_read(offsets, v + blocking::PREFETCH_AHEAD);
            if let Some(&row_start) = offsets.get(v + blocking::PREFETCH_AHEAD / 2) {
                blocking::prefetch_read(targets, row_start);
            }
            debug_assert_eq!(start, offsets[v], "blocked sweep must visit worlds in order");
            let end = offsets[v + 1];
            let row = &targets[start..end];
            start = end;
            let mut count = 0usize;
            // Early-exit once the grade is met (for grade 1 — the
            // common case — this stops at the first satisfying
            // successor).
            row.iter().any(|&w| {
                count += (sat_words[(w >> 6) as usize] >> (w & 63) & 1 == 1) as usize;
                count >= grade
            })
        });
        word_base += block_words;
    }
}

/// Evaluates one diamond instruction into `out`, choosing the forward
/// CSR walk, the dense predecessor-row union, or the CSC gather per
/// the mode and the cost model (see [`diamond_impl`]). Shared by
/// [`Plan`] and [`ModelChecker`].
fn diamond_into(
    model: &Kripke,
    mode: DiamondMode,
    rel: usize,
    grade: usize,
    sat: &Bitset,
    out: &mut Bitset,
    stats: &mut ExecStats,
) {
    let n = model.len();
    let (offsets, targets) = model.relation_rows(rel);
    match diamond_impl(model, mode, rel, grade, sat, targets.len()) {
        DiamondImpl::Dense => {
            stats.reverse_diamonds += 1;
            let pred = model.predecessor_rows(rel);
            out.assign_zeros(n);
            for w in sat.iter_ones() {
                out.or_words(pred.row(w));
            }
        }
        DiamondImpl::Csc => {
            stats.csc_diamonds += 1;
            csc_gather_into(model.predecessors_csc(rel), grade, sat, n, out);
        }
        DiamondImpl::Forward => {
            stats.forward_diamonds += 1;
            // One blocked sweep over the whole universe; the closure
            // threads a CSR cursor through `fill_words_from_fn`,
            // leaning on its exactly-once-in-order invocation contract.
            out.assign_zeros(n);
            forward_sweep_blocked(offsets, targets, grade, sat.words(), 0..n, out.words_mut());
        }
    }
}

/// Fills `out` over universe `0..n` by running `fill(range, words)` on
/// the pool, one chunk per range; range starts must be multiples of 64
/// (as produced by `quantile_ranges` with `align = 64`) so the word
/// slices are disjoint.
fn par_fill(
    out: &mut Bitset,
    n: usize,
    ranges: &[Range<usize>],
    fill: &(dyn Fn(Range<usize>, &mut [u64]) + Sync),
) {
    out.assign_zeros(n);
    if let [only] = ranges {
        // One chunk (tiny or heavily skewed universe): fill inline.
        fill(only.clone(), out.words_mut());
        return;
    }
    let mut rest = out.words_mut();
    let mut chunk_words: Vec<Mutex<&mut [u64]>> = Vec::with_capacity(ranges.len());
    for r in ranges {
        let wc = r.end.div_ceil(64) - r.start / 64;
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(wc);
        chunk_words.push(Mutex::new(head));
        rest = tail;
    }
    WorkerPool::global().run(ranges.len(), &|i| {
        let mut words = chunk_words[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        fill(ranges[i].clone(), &mut words);
    });
}

/// Chunked (pool-parallel) counterpart of [`eval_op_into`] for the two
/// per-world-heavy instructions, `Prop` and `Diamond`; bit-identical
/// output by construction (disjoint word ranges / commutative unions).
fn eval_op_chunked<'a>(
    model: &Kripke,
    mode: DiamondMode,
    op: Op,
    operand: impl Fn(u32) -> &'a Bitset,
    out: &mut Bitset,
    stats: &mut ExecStats,
    threads: usize,
) {
    let n = model.len();
    match op {
        Op::Prop(d) => {
            let degrees = model.degrees();
            // Uniform work per world: quantiles degenerate to equal
            // 64-aligned splits, no work array needed.
            let ranges = quantile_ranges(n, threads, 64, |v| v);
            stats.chunked_ops += (ranges.len() > 1) as usize;
            par_fill(out, n, &ranges, &|range, words| {
                fill_words_from_fn(words, range, |v| degrees[v] == d);
            });
        }
        Op::Diamond { rel, grade, inner } => {
            let sat = operand(inner);
            let (offsets, targets) = model.relation_rows(rel as usize);
            match diamond_impl(model, mode, rel as usize, grade, sat, targets.len()) {
                DiamondImpl::Dense => {
                    stats.reverse_diamonds += 1;
                    stats.chunked_ops +=
                        reverse_diamond_chunked(model, rel as usize, sat, out, threads) as usize;
                }
                DiamondImpl::Csc => {
                    stats.csc_diamonds += 1;
                    stats.chunked_ops += csc_diamond_chunked(
                        model,
                        rel as usize,
                        grade,
                        sat,
                        out,
                        threads,
                    ) as usize;
                }
                DiamondImpl::Forward => {
                    stats.forward_diamonds += 1;
                    let sat_words = sat.words();
                    // Per-world forward work = the CSR row plus the
                    // visit itself, so the cumulative work at world v
                    // is offsets[v] + v. Each chunk re-derives its CSR
                    // cursor from the chunk start and runs the same
                    // blocked sweep as the sequential path.
                    let ranges = quantile_ranges(n, threads, 64, |v| offsets[v] + v);
                    stats.chunked_ops += (ranges.len() > 1) as usize;
                    par_fill(out, n, &ranges, &|range, words| {
                        forward_sweep_blocked(offsets, targets, grade, sat_words, range, words);
                    });
                }
            }
        }
        _ => unreachable!("only Prop and Diamond instructions are chunked"),
    }
}

/// The pool scaffold of the *dense* reverse diamond path:
/// `iter_ones(‖φ‖)` is split at word boundaries balanced by popcount,
/// each chunk runs `gather(world, partial)` for its satisfying worlds
/// into a private partial `Bitset`, and the partials are OR-merged (in
/// chunk order — though OR makes any order bit-identical). Empty or
/// single-chunk sets run inline into `out`. Returns whether the work
/// was actually split. (The CSC path shards finer — at entry
/// granularity, see [`EntryShards`] — because its per-world cost is a
/// row walk, not a fixed-width word OR.)
fn gather_ones_chunked(
    n: usize,
    sat: &Bitset,
    threads: usize,
    out: &mut Bitset,
    gather: &(dyn Fn(usize, &mut Bitset) + Sync),
) -> bool {
    let sat_words = sat.words();
    // Popcount prefix over sat's words, the work array of the quantile
    // split (universe = word indices, not worlds).
    let wn = sat_words.len();
    let mut ones_prefix = Vec::with_capacity(wn + 1);
    ones_prefix.push(0usize);
    for (i, &w) in sat_words.iter().enumerate() {
        ones_prefix.push(ones_prefix[i] + w.count_ones() as usize);
    }
    let ranges = if ones_prefix[wn] == 0 {
        Vec::new()
    } else {
        quantile_ranges(wn, threads, 1, |i| ones_prefix[i])
    };
    if ranges.len() <= 1 {
        out.assign_zeros(n);
        for w in sat.iter_ones() {
            gather(w, out);
        }
        return false;
    }
    let partials: Vec<Mutex<Bitset>> =
        (0..ranges.len()).map(|_| Mutex::new(Bitset::zeros(n))).collect();
    WorkerPool::global().run(ranges.len(), &|i| {
        let mut acc = partials[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for wi in ranges[i].clone() {
            let mut word = sat_words[wi];
            while word != 0 {
                let w = wi * 64 + word.trailing_zeros() as usize;
                gather(w, &mut acc);
                word &= word - 1;
            }
        }
    });
    out.assign_zeros(n);
    for partial in &partials {
        out.or_assign(&partial.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
    }
    true
}

/// Dense reverse diamond over the pool: each satisfying world ORs its
/// whole predecessor bit row into the chunk partial.
fn reverse_diamond_chunked(
    model: &Kripke,
    rel: usize,
    sat: &Bitset,
    out: &mut Bitset,
    threads: usize,
) -> bool {
    let pred = model.predecessor_rows(rel);
    gather_ones_chunked(model.len(), sat, threads, out, &|w, acc| acc.or_words(pred.row(w)))
}

/// The CSC entry space of one gather, sharded at *entry* (not world)
/// granularity: the satisfying worlds in ascending order plus the
/// exclusive prefix sum of their CSC row lengths, so entry index `e`
/// names one predecessor entry of one satisfying world, and an
/// equal-entry split can cut *inside* a heavy-hitter row. This is
/// what keeps one hub world (a star centre, a G(n,p) high-degree
/// world) from serialising a whole chunk the way per-world popcount
/// quantiles would.
struct EntryShards {
    /// Satisfying worlds, ascending.
    ones: Vec<u32>,
    /// `prefix[i]` = entries of `ones[..i]`; length `ones.len() + 1`.
    prefix: Vec<usize>,
}

impl EntryShards {
    fn build(csc: &CscAdjacency, sat: &Bitset) -> EntryShards {
        let mut ones = Vec::new();
        let mut prefix = vec![0usize];
        let mut total = 0usize;
        for u in sat.iter_ones() {
            ones.push(u as u32);
            total += csc.row_len(u);
            prefix.push(total);
        }
        EntryShards { ones, prefix }
    }

    fn total(&self) -> usize {
        *self.prefix.last().expect("prefix always has a leading 0")
    }

    /// Equal-entry chunk ranges over `0..total()` — plain splits, no
    /// work array, because every entry costs the same (one row read).
    fn ranges(&self, chunks: usize) -> Vec<Range<usize>> {
        let total = self.total();
        (0..chunks).map(|i| total * i / chunks..total * (i + 1) / chunks).collect()
    }

    /// Calls `f` once per predecessor entry of entry range `er`, in
    /// ascending entry order, walking whole rows where possible and
    /// partial rows at the shard seams. Prefetches the next row's
    /// bounds/entries one row ahead.
    fn for_entries(&self, csc: &CscAdjacency, er: Range<usize>, mut f: impl FnMut(u32)) {
        if er.is_empty() {
            return;
        }
        // The world containing entry `er.start`: the last index whose
        // prefix is ≤ er.start (ties from empty rows resolve to the
        // non-empty row that actually owns the entry).
        let mut wi = self.prefix.partition_point(|&p| p <= er.start) - 1;
        let mut pos = er.start;
        while pos < er.end {
            let u = self.ones[wi] as usize;
            if let Some(&next) = self.ones.get(wi + 1) {
                csc.prefetch_row(next as usize);
            }
            let row = csc.row(u);
            // `pos` is always within world `wi`'s entry span here: the
            // loop advances `pos` exactly to a row end (or to `er.end`,
            // exiting), and empty rows fall through with `wi += 1`.
            let lo = pos - self.prefix[wi];
            let hi = (er.end - self.prefix[wi]).min(row.len());
            for &v in &row[lo..hi] {
                f(v);
            }
            pos = self.prefix[wi] + hi;
            wi += 1;
        }
    }
}

/// CSC diamond over the pool, sharded at entry quantiles
/// ([`EntryShards`]) so hub rows split across chunks. Grade 1 inserts
/// each chunk's entries into a private partial `Bitset`, OR-merged —
/// insertion is idempotent and OR commutative, so any shard geometry
/// is bit-identical to the inline gather. Grade ≥ 2 scatter-counts
/// each chunk's entries into a private count store — a dense `u32`
/// array when the gather touches at least `n / 8` entries (the shape
/// the inline path scatters into), a sparse map when it is sparser —
/// the per-chunk counts are merged once, sequentially, and a world is
/// inserted when its summed count reaches the grade: the same set the
/// inline insert-at-threshold scatter produces, because both count
/// every stored edge exactly once. Returns whether the work was split.
fn csc_diamond_chunked(
    model: &Kripke,
    rel: usize,
    grade: usize,
    sat: &Bitset,
    out: &mut Bitset,
    threads: usize,
) -> bool {
    let n = model.len();
    let csc = model.predecessors_csc(rel);
    let shards = EntryShards::build(csc, sat);
    let total = shards.total();
    if threads <= 1 || total < 2 {
        csc_gather_into(csc, grade, sat, n, out);
        return false;
    }
    let ranges = shards.ranges(threads.min(total));
    if grade == 1 {
        let partials: Vec<Mutex<Bitset>> =
            (0..ranges.len()).map(|_| Mutex::new(Bitset::zeros(n))).collect();
        WorkerPool::global().run(ranges.len(), &|i| {
            let mut acc = partials[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            shards.for_entries(csc, ranges[i].clone(), |v| {
                acc.insert(v as usize);
            });
        });
        out.assign_zeros(n);
        for partial in &partials {
            out.or_assign(&partial.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        }
    } else if total >= n / 8 {
        // Dense gather: enough entries that a per-chunk `u32` count
        // array (the same shape the inline path scatters into) beats a
        // hash map's per-entry overhead by an order of magnitude, and
        // the O(n · chunks) element-wise merge is dwarfed by the
        // scatter itself.
        let partials: Vec<Mutex<Vec<u32>>> =
            (0..ranges.len()).map(|_| Mutex::new(vec![0u32; n])).collect();
        WorkerPool::global().run(ranges.len(), &|i| {
            let mut counts =
                partials[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            shards.for_entries(csc, ranges[i].clone(), |v| {
                counts[v as usize] += 1;
            });
        });
        let mut partials = partials.into_iter();
        let mut totals = partials
            .next()
            .expect("at least two ranges")
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for partial in partials {
            let counts = partial.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
        }
        out.assign_from_fn(n, |v| totals[v] as usize >= grade);
    } else {
        // Sparse gather: per-chunk sparse count maps, merged once —
        // cost ∝ distinct predecessors touched, not n — then one
        // thresholding pass over the merged totals.
        let partials: Vec<Mutex<FxHashMap<u32, u32>>> =
            (0..ranges.len()).map(|_| Mutex::new(FxHashMap::default())).collect();
        WorkerPool::global().run(ranges.len(), &|i| {
            let mut map = partials[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            shards.for_entries(csc, ranges[i].clone(), |v| {
                *map.entry(v).or_insert(0) += 1;
            });
        });
        let mut totals: FxHashMap<u32, u32> = FxHashMap::default();
        for partial in partials {
            let map = partial.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (v, c) in map {
                *totals.entry(v).or_insert(0) += c;
            }
        }
        out.assign_zeros(n);
        for (v, c) in totals {
            if c as usize >= grade {
                out.insert(v as usize);
            }
        }
    }
    true
}

/// Cumulative statistics of a [`ModelChecker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckerStats {
    /// Pointer-distinct AST nodes lowered so far.
    pub ast_nodes: usize,
    /// Distinct instructions in the shared cons table.
    pub instructions: usize,
    /// Truth vectors computed against the main model (`≤ instructions`;
    /// strictly fewer than `ast_nodes` once dedup bites).
    pub computed: usize,
    /// Truth vectors computed on the cached quotient by
    /// [`ModelChecker::check_via_quotient`] (per-call plans, outside
    /// the main cons table).
    pub quotient_computed: usize,
    /// Lowered nodes resolved to an existing instruction.
    pub dedup_hits: usize,
    /// Diamonds evaluated forward / dense-reverse / CSC-reverse.
    pub forward_diamonds: usize,
    /// See [`CheckerStats::forward_diamonds`].
    pub reverse_diamonds: usize,
    /// See [`CheckerStats::forward_diamonds`].
    pub csc_diamonds: usize,
    /// Kleene iterations executed across all fixpoint instructions
    /// (each fixpoint converges within `n + 1` root evaluations by
    /// monotonicity; the figure the iteration-aware work estimate
    /// prices).
    pub fixpoint_iters: usize,
}

/// What one [`ModelChecker::resume`] repair pass did — the
/// observability hook asserting that a localized delta stays localized
/// (see [`ModelChecker::last_repair`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Cached truth vectors patched world-by-world over their dirty
    /// frontier.
    pub repaired_vectors: usize,
    /// Total world-bits recomputed across all point repairs (`≤
    /// repaired_vectors × n`; on a localized delta, `≪`).
    pub repaired_worlds: usize,
    /// Cached truth vectors recomputed wholesale because their dirty
    /// frontier grew past the dense fallback threshold (a quarter of
    /// the universe).
    pub rebuilt_vectors: usize,
    /// Size of the largest dirty frontier used by a point repair.
    pub max_frontier: usize,
    /// Whether a cached quotient was repaired by resuming refinement
    /// from the prior partition.
    pub quotient_repaired: bool,
}

/// A [`ModelChecker`]'s state, detached from its model borrow so the
/// model can be mutated with [`Kripke::apply_delta`] and the caches
/// *repaired* rather than rebuilt — see [`ModelChecker::detach`] and
/// [`ModelChecker::resume`].
#[derive(Debug)]
pub struct CheckerCache {
    lw: Lowerer,
    retained: Vec<Formula>,
    results: Vec<Option<Rc<Bitset>>>,
    mode: DiamondMode,
    quotient: Option<Rc<(Kripke, Vec<usize>)>>,
    quotient_repaired: bool,
    computed: usize,
    quotient_computed: usize,
    exec: ExecStats,
    published_words: usize,
    /// [`Kripke::version`] at detach time; resume debug-asserts the
    /// caller passed a touched set whenever the version moved.
    model_version: u64,
    n: usize,
}

impl CheckerCache {
    /// Total `u64` words held by the cached truth vectors — the
    /// detached cache's resident size, which a serving layer adds to
    /// the model's own footprint when pricing an entry against a
    /// memory budget. Computed from what is actually cached (repairs
    /// and budget-gated commits included), not from a running
    /// counter.
    pub fn cached_words(&self) -> usize {
        self.results.iter().flatten().map(|b| b.words().len()).sum()
    }

    /// The [`Kripke::version`] this cache was detached at. A serving
    /// layer uses this to assert cache/model version agreement across
    /// the detach → delta → resume handshake.
    pub fn model_version(&self) -> u64 {
        self.model_version
    }
}

/// A per-model evaluation cache: lowering state, computed truth
/// vectors, and the bisimulation quotient, all keyed to one model and
/// shared across every formula checked against it.
///
/// Where [`Plan::compile_suite`] wants the whole suite up front, a
/// `ModelChecker` accepts formulas one at a time (the order compiler
/// suites arrive in) and amortises both lowering and evaluation:
/// a subformula structurally seen before — in *any* earlier formula —
/// costs a hash lookup, not a Bitset computation.
///
/// # Examples
///
/// ```
/// use portnum_graph::generators;
/// use portnum_logic::plan::ModelChecker;
/// use portnum_logic::{Formula, Kripke, ModalIndex};
///
/// let k = Kripke::k_mm(&generators::cycle(5));
/// let mut checker = ModelChecker::new(&k);
/// let dia = Formula::diamond(ModalIndex::Any, &Formula::prop(2));
/// let first = checker.check(&dia)?;
/// // A structurally equal formula is a pure cache hit.
/// let again = checker.check(&Formula::diamond(ModalIndex::Any, &Formula::prop(2)))?;
/// assert!(std::rc::Rc::ptr_eq(&first, &again));
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
pub struct ModelChecker<'m> {
    model: &'m Kripke,
    lw: Lowerer,
    /// Checked formulas, kept alive so the pointer memo in `lw` can
    /// never observe a recycled allocation.
    retained: Vec<Formula>,
    /// Computed truth vectors, indexed by instruction id.
    results: Vec<Option<Rc<Bitset>>>,
    mode: DiamondMode,
    quotient: Option<Rc<(Kripke, Vec<usize>)>>,
    /// Whether `quotient` came from a resumed refinement
    /// ([`ModelChecker::resume`]): stable — valid for
    /// [`Self::check_via_quotient`] — but possibly finer than coarsest,
    /// so [`Self::minimum_base`] must recompute before answering.
    quotient_repaired: bool,
    computed: usize,
    quotient_computed: usize,
    exec: ExecStats,
    /// Words committed into `results` so far — the accumulator the
    /// cache-words budget of [`ModelChecker::check_controlled`] prices
    /// publication against.
    published_words: usize,
    /// What the latest [`Self::resume`] repair pass did, if any.
    last_repair: Option<RepairStats>,
}

impl<'m> ModelChecker<'m> {
    /// A fresh checker for `model` using [`DiamondMode::Auto`].
    pub fn new(model: &'m Kripke) -> Self {
        Self::with_mode(model, DiamondMode::Auto)
    }

    /// A fresh checker with an explicit diamond strategy (benches pin
    /// forward vs. reverse with this).
    pub fn with_mode(model: &'m Kripke, mode: DiamondMode) -> Self {
        ModelChecker {
            model,
            lw: Lowerer::default(),
            retained: Vec::new(),
            results: Vec::new(),
            mode,
            quotient: None,
            quotient_repaired: false,
            computed: 0,
            quotient_computed: 0,
            exec: ExecStats::default(),
            published_words: 0,
            last_repair: None,
        }
    }

    /// The model this checker is bound to.
    pub fn model(&self) -> &'m Kripke {
        self.model
    }

    /// Evaluates `formula` at every world, reusing every structurally
    /// shared subresult computed by earlier calls.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::FamilyMismatch`] as
    /// [`evaluate_packed`](crate::evaluate_packed) does.
    pub fn check(&mut self, formula: &Formula) -> Result<Rc<Bitset>, LogicError> {
        self.check_controlled(formula, &ExecControl::unrestricted())
    }

    /// Control-aware [`check`](Self::check): polls `ctl` at every
    /// instruction boundary and commits the per-instruction truth
    /// vectors into the checker's cache **whole-or-nothing** — an
    /// interrupted (or panicking) check publishes *no* new cache
    /// entries, so an immediate retry computes bits identical to a
    /// fresh checker. The cache-words budget gates publication only:
    /// when committing this check's vectors would cross the ceiling,
    /// the answer is still returned but nothing new is cached (later
    /// structurally-shared checks recompute).
    ///
    /// # Errors
    ///
    /// [`LogicError::Interrupted`] when `ctl` trips, plus everything
    /// [`check`](Self::check) returns.
    pub fn check_controlled(
        &mut self,
        formula: &Formula,
        ctl: &ExecControl,
    ) -> Result<Rc<Bitset>, LogicError> {
        let root = self.lower_retaining(formula)?;
        self.results.resize(self.lw.ops.len(), None);
        if let Some(cached) = &self.results[root as usize] {
            return Ok(Rc::clone(cached));
        }
        let mut out = self.eval_needed(&[root], ctl)?;
        Ok(out.pop().expect("one root in, one vector out"))
    }

    /// Batched [`check_controlled`](Self::check_controlled): lowers
    /// every formula of the batch into the shared instruction table
    /// first, then evaluates the *union* of still-missing instructions
    /// in one pass — a subformula shared by any two batch members (or
    /// by an earlier check) is computed once, and the whole-or-nothing
    /// commit covers the batch as a unit. This is the coalesced entry
    /// point the serving layer routes compatible same-model formula
    /// batches through; it is pinned bit-identical to checking the
    /// formulas one at a time.
    ///
    /// Truth vectors come out in input order.
    ///
    /// # Errors
    ///
    /// As [`check_controlled`](Self::check_controlled). An error lowers
    /// no partial answers: either every formula's vector is returned or
    /// none is (though formulas lowered before the failing one stay
    /// memoised, exactly as a failed single check would leave them).
    pub fn check_suite_controlled(
        &mut self,
        formulas: &[Formula],
        ctl: &ExecControl,
    ) -> Result<Vec<Rc<Bitset>>, LogicError> {
        let mut roots = Vec::with_capacity(formulas.len());
        for formula in formulas {
            roots.push(self.lower_retaining(formula)?);
        }
        self.results.resize(self.lw.ops.len(), None);
        Ok(self.eval_needed(&roots, ctl)?)
    }

    /// Unrestricted [`check_suite_controlled`](Self::check_suite_controlled).
    ///
    /// # Errors
    ///
    /// As [`check`](Self::check).
    pub fn check_suite(&mut self, formulas: &[Formula]) -> Result<Vec<Rc<Bitset>>, LogicError> {
        self.check_suite_controlled(formulas, &ExecControl::unrestricted())
    }

    /// Prices a batch without running it: lowers every formula (which
    /// only grows the shared instruction table, never evaluates) and
    /// sums the per-instruction work estimate
    /// ([`ExecBudget`](portnum_graph::resilience::ExecBudget)'s
    /// touched-words currency, the same figure
    /// [`check_controlled`](Self::check_controlled) meters against the
    /// budget) over the instructions a subsequent
    /// [`check_suite_controlled`](Self::check_suite_controlled) would
    /// actually evaluate. Cached subresults price at zero, so the
    /// estimate falls as the cache warms — admission control sees the
    /// marginal cost, not the cold cost.
    ///
    /// # Errors
    ///
    /// [`LogicError::FamilyMismatch`] as lowering does.
    pub fn estimate_work(&mut self, formulas: &[Formula]) -> Result<usize, LogicError> {
        let mut roots = Vec::with_capacity(formulas.len());
        for formula in formulas {
            roots.push(self.lower_retaining(formula)?);
        }
        self.results.resize(self.lw.ops.len(), None);
        let mut visited = vec![false; self.lw.ops.len()];
        let mut stack = roots;
        let mut work = 0usize;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut visited[id as usize], true)
                || self.results[id as usize].is_some()
            {
                continue;
            }
            work += op_work_for(self.model, &self.lw.bodies, self.lw.ops[id as usize]);
            self.lw.ops[id as usize].for_each_operand(|a| stack.push(a));
        }
        Ok(work)
    }

    /// Lowers `formula`, pinning it in `retained` iff lowering recorded
    /// new pointer-memo nodes. The pointer memo stays sound only while
    /// its keys stay alive; a pure memo hit pins nothing new, so
    /// repeated checks stay bounded. Checked even on error: a failed
    /// lowering memoises the subformulas it reached before failing.
    fn lower_retaining(&mut self, formula: &Formula) -> Result<u32, LogicError> {
        let memo_before = self.lw.ptr_memo.len();
        let lowered = self.lw.lower(self.model, formula);
        if self.lw.ptr_memo.len() > memo_before {
            self.retained.push(formula.clone());
        }
        lowered
    }

    /// Computes the still-missing results the `roots` depend on,
    /// ascending by instruction id (operands precede consumers), and
    /// returns one truth vector per root, in input order.
    ///
    /// Newly computed vectors are *staged* and committed into
    /// `self.results` only after every needed instruction completed:
    /// an interruption (or an injected panic at the `checker-instr`
    /// failpoint) between instructions unwinds with the staging buffer
    /// and leaves the cache exactly as the previous check left it —
    /// never a partially-published check. With several roots (a
    /// coalesced suite) the batch commits as one unit.
    fn eval_needed(
        &mut self,
        roots: &[u32],
        ctl: &ExecControl,
    ) -> Result<Vec<Rc<Bitset>>, Interrupted> {
        let mut needed: Vec<u32> = Vec::new();
        let mut visited = vec![false; self.lw.ops.len()];
        let mut stack = roots.to_vec();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut visited[id as usize], true)
                || self.results[id as usize].is_some()
            {
                continue;
            }
            needed.push(id);
            self.lw.ops[id as usize].for_each_operand(|a| stack.push(a));
        }
        needed.sort_unstable();
        let mut staged: Vec<(u32, Rc<Bitset>)> = Vec::with_capacity(needed.len());
        let mut exec = ExecStats::default();
        let mut touched = 0usize;
        for id in needed {
            // Chaos site at the checker's instruction boundary; see the
            // staging contract above.
            fail::fail_point!("checker-instr");
            touched += op_work_for(self.model, &self.lw.bodies, self.lw.ops[id as usize]);
            ctl.check_work(touched)?;
            let mut out = Bitset::default();
            let results = &self.results;
            // Operands resolve through the committed cache first, then
            // the staging buffer (ascending id order guarantees a
            // staged operand was pushed before its consumer).
            let operand = |a: u32| -> &Bitset {
                results[a as usize].as_deref().unwrap_or_else(|| {
                    let at = staged
                        .binary_search_by_key(&a, |&(id, _)| id)
                        .expect("operands evaluated before consumers");
                    &staged[at].1
                })
            };
            if let Op::Fixpoint(b) = self.lw.ops[id as usize] {
                // Top-level fixpoint bodies are closed (a free variable is
                // a lowering error), so the arg resolver is never called;
                // the iteration runs sequentially inside the checker.
                eval_fixpoint_into(
                    self.model,
                    self.mode,
                    &self.lw.bodies,
                    b,
                    &operand,
                    &mut out,
                    &mut exec,
                    ctl,
                    &|_| 1,
                )?;
            } else {
                eval_op_into(self.model, self.mode, self.lw.ops[id as usize], operand, &mut out, &mut exec);
            }
            staged.push((id, Rc::new(out)));
        }
        let root_vecs = roots
            .iter()
            .map(|&root| match staged.binary_search_by_key(&root, |&(id, _)| id) {
                Ok(at) => Rc::clone(&staged[at].1),
                Err(_) => Rc::clone(
                    self.results[root as usize].as_ref().expect("root cached by an earlier check"),
                ),
            })
            .collect();
        self.exec.absorb(exec);
        // Commit point: everything below is infallible. The cache-words
        // budget gates publication as a whole — answer-but-don't-cache
        // beats failing the query.
        let staged_words: usize = staged.iter().map(|(_, b)| b.words().len()).sum();
        if !ctl.budget.cache_over(self.published_words, staged_words) {
            self.published_words += staged_words;
            for (id, vec) in staged {
                self.computed += 1;
                self.results[id as usize] = Some(vec);
            }
        }
        Ok(root_vecs)
    }

    /// Detaches the checker's caches from its model borrow so the
    /// model can be mutated ([`Kripke::apply_delta`]) and the checker
    /// brought back with [`Self::resume`] — the live-update handshake:
    ///
    /// ```
    /// use portnum_graph::generators;
    /// use portnum_logic::plan::ModelChecker;
    /// use portnum_logic::{Formula, Kripke, ModalIndex, ModelDelta};
    ///
    /// let mut k = Kripke::k_mm(&generators::path(6));
    /// let phi = Formula::diamond(ModalIndex::Any, &Formula::prop(1));
    /// let mut checker = ModelChecker::new(&k);
    /// let before = checker.check(&phi)?.to_bools();
    ///
    /// let cache = checker.detach();
    /// let mut delta = ModelDelta::new();
    /// delta.remove_edge(ModalIndex::Any, 0, 1).remove_edge(ModalIndex::Any, 1, 0);
    /// let touched = k.apply_delta(&delta)?;
    /// let mut checker = ModelChecker::resume(&k, cache, &touched);
    ///
    /// // Repaired answers are bit-identical to a fresh checker's.
    /// assert_eq!(
    ///     checker.check(&phi)?.to_bools(),
    ///     ModelChecker::new(&k).check(&phi)?.to_bools(),
    /// );
    /// assert_ne!(checker.check(&phi)?.to_bools(), before);
    /// # Ok::<(), portnum_logic::LogicError>(())
    /// ```
    pub fn detach(self) -> CheckerCache {
        CheckerCache {
            lw: self.lw,
            retained: self.retained,
            results: self.results,
            mode: self.mode,
            quotient: self.quotient,
            quotient_repaired: self.quotient_repaired,
            computed: self.computed,
            quotient_computed: self.quotient_computed,
            exec: self.exec,
            published_words: self.published_words,
            model_version: self.model.version(),
            n: self.model.len(),
        }
    }

    /// Rebinds a detached cache to `model` — the same model the cache
    /// was detached from, after any number of [`Kripke::apply_delta`]
    /// calls — and *repairs* the cached truth vectors instead of
    /// dropping them. `touched` is the union of the touched-world lists
    /// returned by the deltas applied since [`Self::detach`] (order and
    /// duplicates don't matter).
    ///
    /// Repair recomputes only what a delta can have changed: an
    /// instruction of modal height `h` is stale at world `v` exactly
    /// when some touched world is forward-reachable from `v` within `h`
    /// steps, so each cached vector is patched pointwise over the
    /// frontier `D_h = touched ∪ preds(touched) ∪ …` (`h` predecessor
    /// expansions, read off the post-delta CSC store). A frontier that
    /// grows past a quarter of the universe falls back to recomputing
    /// that vector wholesale — past that point the dense sweep is
    /// cheaper than point lookups. Both paths are pinned bit-identical
    /// to a fresh checker by the differential delta suite, and
    /// [`Self::last_repair`] reports which path each vector took.
    ///
    /// A cached quotient is repaired too, by resuming partition
    /// refinement from the prior partition seeded with the dirty
    /// frontier ([`crate::bisim::refine_fixpoint_from`]) — stable, so
    /// [`Self::check_via_quotient`] stays exact, but possibly finer
    /// than coarsest, so the next [`Self::minimum_base`] recomputes.
    ///
    /// `PORTNUM_DELTA=rebuild` ([`delta_override`]) turns resume into
    /// the escape hatch: all cached vectors and the quotient are
    /// dropped and later checks recompute from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `model` has a different world count than the cache was
    /// detached with (deltas never resize the universe — crashed worlds
    /// stay as isolated vertices).
    pub fn resume(model: &'m Kripke, cache: CheckerCache, touched: &[u32]) -> ModelChecker<'m> {
        assert_eq!(
            model.len(),
            cache.n,
            "resume requires the model the cache was detached from"
        );
        debug_assert!(
            model.version() == cache.model_version || !touched.is_empty(),
            "model version moved but no touched worlds were passed"
        );
        let mut checker = ModelChecker {
            model,
            lw: cache.lw,
            retained: cache.retained,
            results: cache.results,
            mode: cache.mode,
            quotient: cache.quotient,
            quotient_repaired: cache.quotient_repaired,
            computed: cache.computed,
            quotient_computed: cache.quotient_computed,
            exec: cache.exec,
            published_words: cache.published_words,
            last_repair: None,
        };
        if touched.is_empty() && model.version() == cache.model_version {
            return checker;
        }
        if delta_override() == DeltaOverride::Rebuild {
            checker.results.iter_mut().for_each(|r| *r = None);
            checker.quotient = None;
            checker.quotient_repaired = false;
            return checker;
        }
        checker.repair(touched);
        checker
    }

    /// The repair pass of [`Self::resume`]; see its contract there.
    fn repair(&mut self, touched: &[u32]) {
        let model = self.model;
        let n = model.len();
        let mut stats = RepairStats::default();

        let mut d0: Vec<u32> = touched.to_vec();
        d0.sort_unstable();
        d0.dedup();
        assert!(d0.last().is_none_or(|&w| (w as usize) < n), "touched world out of range");

        // Change propagation in ascending id order (operands before
        // consumers; a cached consumer's operands are always cached —
        // commits are whole-or-nothing). Each cached vector re-evaluates
        // only its *candidate* worlds — those whose value can have
        // moved: the touched set where the op reads the model directly
        // (valuations for `Prop`, edited rows for `Diamond` — both
        // endpoints of every edit are in `touched`, so removed edges
        // need no pre-delta predecessor pass), and the operands' worlds
        // that **actually flipped** for the rest (their post-delta
        // predecessors, for a diamond). The flips recorded at each op
        // drive its consumers, so a delta the formula cannot observe
        // dies out after one ring instead of dirtying a
        // frontier-per-modal-height closure of the touched set.
        let dense = |d: usize| d * 4 >= n;
        let mut changed: Vec<Vec<u32>> = vec![Vec::new(); self.results.len()];
        let mut exec = ExecStats::default();
        for id in 0..self.results.len() {
            let Some(existing) = self.results[id].take() else { continue };
            let op = self.lw.ops[id];
            if let Op::Fixpoint(b) = op {
                // A fixpoint reads the model at unbounded modal depth, so
                // no frontier bound holds after a delta: rebuild it
                // wholesale (its own executor still iterates by frontier)
                // and let the word diff drive downstream consumers.
                let results = &self.results;
                let operand = |a: u32| -> &Bitset {
                    results[a as usize]
                        .as_deref()
                        .expect("cached consumers have cached operands")
                };
                let mut out = Bitset::default();
                eval_fixpoint_into(
                    model,
                    self.mode,
                    &self.lw.bodies,
                    b,
                    &operand,
                    &mut out,
                    &mut exec,
                    &ExecControl::unrestricted(),
                    &|_| 1,
                )
                .expect("unrestricted control never interrupts");
                existing.for_each_difference(&out, |v| changed[id].push(v as u32));
                stats.rebuilt_vectors += 1;
                self.computed += 1;
                self.results[id] = Some(Rc::new(out));
                continue;
            }
            // Candidate dirty worlds, sorted ascending and deduplicated.
            let candidates: Vec<u32> = match op {
                // Constant vectors cannot be dirtied.
                Op::Top | Op::Bottom => Vec::new(),
                Op::Prop(_) => d0.clone(),
                Op::Not(a) => changed[a as usize].clone(),
                Op::And(a, b) | Op::Or(a, b) => {
                    let mut c: Vec<u32> =
                        changed[a as usize].iter().chain(&changed[b as usize]).copied().collect();
                    c.sort_unstable();
                    c.dedup();
                    c
                }
                Op::Diamond { inner, .. } => {
                    let mut c = d0.clone();
                    let inner_changed = &changed[inner as usize];
                    if !inner_changed.is_empty() {
                        let csc = model.combined_predecessors_csc();
                        for &w in inner_changed {
                            c.extend_from_slice(csc.row(w as usize));
                        }
                        c.sort_unstable();
                        c.dedup();
                    }
                    c
                }
                Op::Var | Op::Arg(_) => unreachable!("Var/Arg live only inside fixpoint bodies"),
                Op::Fixpoint(_) => unreachable!("fixpoints are rebuilt wholesale above"),
            };
            if candidates.is_empty() {
                self.results[id] = Some(existing);
                continue;
            }
            if dense(candidates.len()) {
                // Past the fallback threshold a wholesale vectorized
                // recompute beats point repair; the flips still come
                // cheap off a word-level diff.
                let results = &self.results;
                let operand = |a: u32| -> &Bitset {
                    results[a as usize]
                        .as_deref()
                        .expect("cached consumers have cached operands")
                };
                let mut out = Bitset::default();
                eval_op_into(model, self.mode, op, operand, &mut out, &mut exec);
                for v in 0..n {
                    if out.get(v) != existing.get(v) {
                        changed[id].push(v as u32);
                    }
                }
                stats.rebuilt_vectors += 1;
                self.computed += 1;
                self.results[id] = Some(Rc::new(out));
                continue;
            }
            let mut vec = existing;
            let bits = Rc::make_mut(&mut vec);
            let results = &self.results;
            let operand = |a: u32| -> &Bitset {
                results[a as usize]
                    .as_deref()
                    .expect("cached consumers have cached operands")
            };
            // One dispatch per vector, not per world: each arm resolves
            // its operand bitsets once and runs a tight point loop —
            // semantically `eval_op_into(..).get(v)` per candidate,
            // pinned by the differential delta tests.
            let flips = &mut changed[id];
            match op {
                Op::Top | Op::Bottom => unreachable!("constants have no candidates"),
                Op::Prop(d) => {
                    for &v in &candidates {
                        let now = model.degree(v as usize) == d;
                        if bits.get(v as usize) != now {
                            bits.set(v as usize, now);
                            flips.push(v);
                        }
                    }
                }
                Op::Not(a) => {
                    let a = operand(a);
                    for &v in &candidates {
                        let now = !a.get(v as usize);
                        if bits.get(v as usize) != now {
                            bits.set(v as usize, now);
                            flips.push(v);
                        }
                    }
                }
                Op::And(a, b) => {
                    let (a, b) = (operand(a), operand(b));
                    for &v in &candidates {
                        let now = a.get(v as usize) && b.get(v as usize);
                        if bits.get(v as usize) != now {
                            bits.set(v as usize, now);
                            flips.push(v);
                        }
                    }
                }
                Op::Or(a, b) => {
                    let (a, b) = (operand(a), operand(b));
                    for &v in &candidates {
                        let now = a.get(v as usize) || b.get(v as usize);
                        if bits.get(v as usize) != now {
                            bits.set(v as usize, now);
                            flips.push(v);
                        }
                    }
                }
                Op::Diamond { rel, grade, inner } => {
                    let sat = operand(inner);
                    for &v in &candidates {
                        let mut count = 0usize;
                        let mut now = false;
                        for &w in model.successors_dense(rel as usize, v as usize) {
                            if sat.get(w as usize) {
                                count += 1;
                                if count >= grade {
                                    now = true;
                                    break;
                                }
                            }
                        }
                        if bits.get(v as usize) != now {
                            bits.set(v as usize, now);
                            flips.push(v);
                        }
                    }
                }
                Op::Var | Op::Arg(_) | Op::Fixpoint(_) => {
                    unreachable!("never point-repaired: no candidates or handled above")
                }
            }
            stats.repaired_vectors += 1;
            stats.repaired_worlds += candidates.len();
            stats.max_frontier = stats.max_frontier.max(candidates.len());
            self.results[id] = Some(vec);
        }
        self.exec.absorb(exec);

        // Quotient repair: resume refinement from the prior (stable,
        // pre-delta) partition instead of refining from scratch.
        if let Some(q) = self.quotient.take() {
            let classes = crate::bisim::refine_fixpoint_from(
                model,
                crate::bisim::BisimStyle::Plain,
                &q.1,
                &d0,
            );
            self.quotient = Some(Rc::new(crate::quotient::quotient(model, &classes)));
            self.quotient_repaired = true;
            stats.quotient_repaired = true;
        }
        self.last_repair = Some(stats);
    }

    /// What the latest [`Self::resume`] repair pass did, or `None` if
    /// this checker has not repaired anything (fresh checker, no-op
    /// resume, or `PORTNUM_DELTA=rebuild`).
    pub fn last_repair(&self) -> Option<&RepairStats> {
        self.last_repair.as_ref()
    }

    /// The model's minimum base (quotient by plain bisimilarity),
    /// computed on first use and cached for the checker's lifetime —
    /// the "quotient keyed by model identity" that amortises
    /// symmetric-model suites.
    ///
    /// A quotient repaired across a delta ([`Self::resume`]) is stable
    /// but possibly finer than coarsest, so this recomputes the
    /// coarsest partition from scratch before answering; the repaired
    /// quotient keeps serving [`Self::check_via_quotient`] until then.
    pub fn minimum_base(&mut self) -> Rc<(Kripke, Vec<usize>)> {
        if self.quotient_repaired {
            self.quotient = None;
            self.quotient_repaired = false;
        }
        if let Some(q) = &self.quotient {
            return Rc::clone(q);
        }
        let q = Rc::new(crate::quotient::minimum_base(self.model));
        self.quotient = Some(Rc::clone(&q));
        q
    }

    /// The cached quotient under *some* stable plain bisimulation —
    /// the coarsest one unless a delta repair left a finer (still
    /// stable, still truth-preserving) partition in the cache. This is
    /// all [`Self::check_via_quotient`] needs; callers that require
    /// the minimum base itself use [`Self::minimum_base`].
    fn stable_base(&mut self) -> Rc<(Kripke, Vec<usize>)> {
        if let Some(q) = &self.quotient {
            return Rc::clone(q);
        }
        self.minimum_base()
    }

    /// Evaluates an **ungraded** formula on the cached quotient and
    /// expands the result back to the full model — a large win when the
    /// model is symmetric (quotient ≪ model). Only the quotient itself
    /// is amortised; the quotient-side plan is compiled per call (it
    /// runs under the checker's pinned [`DiamondMode`] and is counted
    /// in [`CheckerStats`]).
    ///
    /// # Errors
    ///
    /// As [`ModelChecker::check`].
    ///
    /// # Panics
    ///
    /// Panics if the formula is graded: set-based quotients preserve
    /// only ungraded truth (see [`crate::quotient`]).
    pub fn check_via_quotient(&mut self, formula: &Formula) -> Result<Bitset, LogicError> {
        assert!(
            formula.is_ungraded(),
            "quotients preserve only ungraded truth; use check() for graded formulas"
        );
        let q = self.stable_base();
        let (quotient, map) = &*q;
        let plan = Plan::compile(quotient, formula)?;
        let (mut truths, exec) = plan.execute_with(quotient, self.mode);
        self.quotient_computed += exec.executed;
        self.exec.forward_diamonds += exec.forward_diamonds;
        self.exec.reverse_diamonds += exec.reverse_diamonds;
        self.exec.csc_diamonds += exec.csc_diamonds;
        let truth = truths.pop().expect("single root");
        Ok(Bitset::from_fn(map.len(), |v| truth.get(map[v])))
    }

    /// Cumulative lowering/evaluation statistics.
    pub fn stats(&self) -> CheckerStats {
        CheckerStats {
            ast_nodes: self.lw.ast_nodes,
            instructions: self.lw.ops.len(),
            computed: self.computed,
            quotient_computed: self.quotient_computed,
            dedup_hits: self.lw.dedup_hits,
            forward_diamonds: self.exec.forward_diamonds,
            reverse_diamonds: self.exec.reverse_diamonds,
            csc_diamonds: self.exec.csc_diamonds,
            fixpoint_iters: self.exec.fixpoint_iters,
        }
    }
}

impl std::fmt::Debug for ModelChecker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelChecker")
            .field("worlds", &self.model.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_packed_recursive;
    use crate::formula::ModalIndex;
    use portnum_graph::{generators, PortNumbering};

    /// Structurally equal diamond towers sharing no `Arc`s.
    fn unshared_tower(depth: usize) -> Formula {
        let mut f = Formula::prop(2);
        for _ in 0..depth {
            f = Formula::diamond(ModalIndex::Any, &f).or(&Formula::prop(1));
        }
        f
    }

    #[test]
    fn plan_matches_recursive_on_all_variants() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        let models = [
            Kripke::k_pp(&g, &p),
            Kripke::k_mp(&g, &p),
            Kripke::k_pm(&g, &p),
            Kripke::k_mm(&g),
        ];
        for k in &models {
            let index = k.indices().next().unwrap();
            let f = Formula::diamond(index, &Formula::prop(2))
                .or(&Formula::box_(index, &Formula::prop(3)))
                .and(&Formula::diamond_geq(index, 2, &Formula::prop(2)).not());
            let plan = Plan::compile(k, &f).unwrap();
            let got = plan.execute(k).pop().unwrap();
            assert_eq!(got, evaluate_packed_recursive(k, &f).unwrap(), "{:?}", k.variant());
        }
    }

    #[test]
    fn structural_dedup_beats_pointer_identity() {
        // Two separately built copies: pointer memoisation sees 2×
        // the nodes, the plan lowers them once.
        let a = unshared_tower(6);
        let b = unshared_tower(6);
        let k = Kripke::k_mm(&generators::grid(3, 3));
        let plan = Plan::compile_suite(&k, [&a, &b]).unwrap();
        let stats = plan.stats();
        assert!(
            stats.instructions < stats.ast_nodes,
            "dedup must shrink the instruction list: {stats:?}"
        );
        assert!(stats.dedup_hits > 0);
        let (results, exec) = plan.execute_with(&k, DiamondMode::Auto);
        assert_eq!(exec.executed, stats.instructions);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], evaluate_packed_recursive(&k, &a).unwrap());
    }

    #[test]
    fn check_suite_matches_individual_checks() {
        let k = Kripke::k_mm(&generators::grid(4, 4));
        let suite: Vec<Formula> = (1..=4)
            .map(|p| {
                Formula::diamond(ModalIndex::Any, &Formula::prop(p))
                    .or(&Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(1)))
            })
            .collect();
        let mut batched = ModelChecker::new(&k);
        let got = batched.check_suite(&suite).unwrap();
        let mut oneshot = ModelChecker::new(&k);
        for (f, g) in suite.iter().zip(&got) {
            assert_eq!(**g, *oneshot.check(f).unwrap());
        }
        // The batch committed into the shared cache: a repeat is a pure
        // cache hit, vector for vector.
        let again = batched.check_suite(&suite).unwrap();
        for (a, b) in got.iter().zip(&again) {
            assert!(Rc::ptr_eq(a, b));
        }
    }

    #[test]
    fn estimate_work_prices_marginal_cost() {
        let k = Kripke::k_mm(&generators::grid(4, 4));
        let suite: Vec<Formula> = (1..=3)
            .map(|p| Formula::diamond(ModalIndex::Any, &Formula::prop(p)))
            .collect();
        let mut checker = ModelChecker::new(&k);
        let cold = checker.estimate_work(&suite).unwrap();
        assert!(cold > 0, "cold batches carry a nonzero price");
        // The compiled-plan estimate prices the same instructions.
        let plan = Plan::compile_suite(&k, suite.iter()).unwrap();
        assert_eq!(plan.estimated_work(&k), cold);
        checker.check_suite(&suite).unwrap();
        assert_eq!(
            checker.estimate_work(&suite).unwrap(),
            0,
            "a fully cached batch is free"
        );
    }

    #[test]
    fn slots_are_bounded_by_dag_width() {
        // A pure diamond chain has width 1; with the Or-leaf it's 2–3.
        let k = Kripke::k_mm(&generators::cycle(8));
        let mut f = Formula::prop(2);
        for _ in 0..40 {
            f = Formula::diamond(ModalIndex::Any, &f);
        }
        let plan = Plan::compile(&k, &f).unwrap();
        assert!(plan.stats().slots <= 2, "{:?}", plan.stats());
        assert_eq!(plan.len(), 41);
        assert_eq!(
            plan.execute(&k).pop().unwrap(),
            evaluate_packed_recursive(&k, &f).unwrap()
        );
    }

    #[test]
    fn forward_and_reverse_diamonds_agree() {
        let g = generators::grid(4, 4);
        let p = PortNumbering::consistent(&g);
        for k in [Kripke::k_mm(&g), Kripke::k_pm(&g, &p)] {
            let index = k.indices().next().unwrap();
            let f = Formula::diamond(index, &Formula::prop(2))
                .or(&Formula::diamond(index, &Formula::prop(3).not()));
            let plan = Plan::compile(&k, &f).unwrap();
            let (fwd, sf) = plan.execute_with(&k, DiamondMode::Forward);
            let (rev, sr) = plan.execute_with(&k, DiamondMode::Reverse);
            let (csc, sc) = plan.execute_with(&k, DiamondMode::Csc);
            assert_eq!(fwd, rev);
            assert_eq!(fwd, csc);
            assert_eq!(sf.reverse_diamonds + sf.csc_diamonds, 0);
            assert_eq!(sr.forward_diamonds, 0);
            assert!(sr.reverse_diamonds > 0);
            assert_eq!(sc.forward_diamonds + sc.reverse_diamonds, 0);
            assert!(sc.csc_diamonds > 0);
        }
    }

    #[test]
    fn graded_diamonds_count_via_csc_under_reverse() {
        // Dense bit rows cannot count, so a graded diamond pinned to
        // the reverse path runs the CSC counting gather (before the
        // CSC store existed it had to fall back to the forward walk).
        let k = Kripke::k_mm(&generators::star(4));
        let f = Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(1));
        let plan = Plan::compile(&k, &f).unwrap();
        let (mut out, stats) = plan.execute_with(&k, DiamondMode::Reverse);
        assert_eq!(stats.csc_diamonds, 1, "graded reverse counts via CSC: {stats:?}");
        assert_eq!(stats.forward_diamonds, 0);
        assert_eq!(stats.reverse_diamonds, 0);
        assert_eq!(out.pop().unwrap(), evaluate_packed_recursive(&k, &f).unwrap());
        // Forward mode still takes the counting walk.
        let (mut out, stats) = plan.execute_with(&k, DiamondMode::Forward);
        assert_eq!(stats.forward_diamonds, 1);
        assert_eq!(out.pop().unwrap(), evaluate_packed_recursive(&k, &f).unwrap());
        // And the explicit CSC mode agrees, grade included.
        let (mut out, stats) = plan.execute_with(&k, DiamondMode::Csc);
        assert_eq!(stats.csc_diamonds, 1);
        assert_eq!(out.pop().unwrap(), evaluate_packed_recursive(&k, &f).unwrap());
    }

    #[test]
    fn folds_preserve_semantics() {
        let k = Kripke::k_mm(&generators::path(5));
        let q = Formula::prop(1);
        let cases = [
            q.not().not(),
            q.and(&q),
            q.or(&Formula::bottom()),
            q.and(&Formula::top()),
            q.and(&Formula::bottom()),
            q.or(&Formula::top()),
            Formula::diamond_geq(ModalIndex::Any, 0, &q),
            Formula::diamond(ModalIndex::Any, &Formula::bottom()),
            Formula::top().not(),
        ];
        for f in &cases {
            let plan = Plan::compile(&k, f).unwrap();
            assert_eq!(
                plan.execute(&k).pop().unwrap(),
                evaluate_packed_recursive(&k, f).unwrap(),
                "{f}"
            );
        }
        // a ∧ b and b ∧ a cons to one instruction.
        let ab = q.and(&Formula::prop(2));
        let ba = Formula::prop(2).and(&q);
        let plan = Plan::compile_suite(&k, [&ab, &ba]).unwrap();
        let diamonds_and_atoms = 3; // q1, q2, and one shared And
        assert_eq!(plan.len(), diamonds_and_atoms);
    }

    #[test]
    fn family_mismatch_is_an_error() {
        let k = Kripke::k_mm(&generators::cycle(3));
        let f = Formula::diamond(ModalIndex::Out(0), &Formula::top());
        assert!(matches!(
            Plan::compile(&k, &f),
            Err(LogicError::FamilyMismatch { .. })
        ));
        // …even under a vacuous grade, as in the recursive engine.
        let g0 = Formula::diamond_geq(ModalIndex::Out(0), 0, &Formula::top());
        assert!(Plan::compile(&k, &g0).is_err());
    }

    #[test]
    fn checker_caches_across_structurally_equal_formulas() {
        let k = Kripke::k_mm(&generators::grid(3, 3));
        let mut checker = ModelChecker::new(&k);
        let first = checker.check(&unshared_tower(5)).unwrap();
        let computed_once = checker.stats().computed;
        let again = checker.check(&unshared_tower(5)).unwrap();
        assert!(Rc::ptr_eq(&first, &again));
        assert_eq!(checker.stats().computed, computed_once, "second check is free");
        assert!(checker.stats().computed < checker.stats().ast_nodes);
    }

    #[test]
    fn repeated_checks_stay_bounded() {
        let k = Kripke::k_mm(&generators::cycle(6));
        let mut checker = ModelChecker::new(&k);
        let f = unshared_tower(4);
        let first = checker.check(&f).unwrap();
        let retained = checker.retained.len();
        // Re-checking the same Arc-shared formula is a pure memo hit:
        // no new retention, no new computation, same Rc back.
        for _ in 0..5 {
            let again = checker.check(&f).unwrap();
            assert!(Rc::ptr_eq(&first, &again));
        }
        assert_eq!(checker.retained.len(), retained);
        // A failed lowering retains the formula: its subnodes entered
        // the pointer memo before the family check failed.
        let bad = Formula::prop(1).and(&Formula::diamond(
            crate::formula::ModalIndex::Out(0),
            &Formula::prop(2),
        ));
        assert!(checker.check(&bad).is_err());
        assert!(checker.retained.len() > retained);
    }

    #[test]
    fn checker_quotient_is_cached_and_agrees() {
        let g = generators::theorem13_witness().0;
        let k = Kripke::k_mm(&g);
        let mut checker = ModelChecker::new(&k);
        let q1 = checker.minimum_base();
        let q2 = checker.minimum_base();
        assert!(Rc::ptr_eq(&q1, &q2));
        let f = Formula::diamond(ModalIndex::Any, &Formula::prop(2)).not();
        let via_q = checker.check_via_quotient(&f).unwrap();
        assert_eq!(&via_q, &*checker.check(&f).unwrap());
    }

    #[test]
    #[should_panic(expected = "ungraded")]
    fn checker_quotient_rejects_graded() {
        let k = Kripke::k_mm(&generators::cycle(4));
        let mut checker = ModelChecker::new(&k);
        let _ = checker.check_via_quotient(&Formula::diamond_geq(
            ModalIndex::Any,
            2,
            &Formula::top(),
        ));
    }

    #[test]
    fn empty_suite_and_empty_model() {
        let k = Kripke::k_mm(&generators::cycle(3));
        let plan = Plan::compile_suite(&k, []).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.root_count(), 0);
        assert!(plan.execute(&k).is_empty());

        let empty = Kripke::from_parts(
            crate::kripke::ModelVariant::MinusMinus,
            Vec::new(),
            std::collections::BTreeMap::new(),
        )
        .unwrap();
        let truth = Plan::compile(&empty, &Formula::top()).unwrap().execute(&empty);
        assert_eq!(truth[0].len(), 0);
    }

    /// A sparse relation over a large universe: `n = 640` worlds,
    /// 20 stored pairs, 4 worlds satisfying the inner formula.
    fn sparse_relation_model() -> Kripke {
        let n = 640;
        let mut degree = vec![0usize; n];
        for d in &mut degree[600..604] {
            *d = 7;
        }
        let mut rows = vec![Vec::new(); n];
        for (v, row) in rows.iter_mut().enumerate().take(20) {
            row.push(600 + v % 4);
        }
        let mut relations = std::collections::BTreeMap::new();
        relations.insert(ModalIndex::Any, rows);
        Kripke::from_parts(crate::kripke::ModelVariant::MinusMinus, degree, relations).unwrap()
    }

    /// Skips strategy-count pins when `PORTNUM_REVERSE` pins `Auto`
    /// to one implementation (the CI matrix runs this suite under
    /// every knob value; output equality is asserted elsewhere).
    fn auto_is_unpinned() -> bool {
        reverse_override() == ReverseOverride::Auto
    }

    #[test]
    fn auto_cost_model_counts_the_full_forward_sweep() {
        if !auto_is_unpinned() {
            return;
        }
        // Regression for the Auto crossover: the forward walk costs
        // n + targets.len() (assign_from_fn visits every world, empty
        // row or not), so on this model a reverse path (4 satisfying
        // worlds with 20 predecessor entries between them) beats
        // forward (640 + 20). The old comparison against targets.len()
        // alone wrongly chose the forward path. Under the three-way
        // model the winner is the CSC gather (4 + 20 + 10 = 34 entry
        // ops vs. 4 ones × 10 row words = 40 for the dense rows).
        let k = sparse_relation_model();
        let f = Formula::diamond(ModalIndex::Any, &Formula::prop(7));
        let plan = Plan::compile(&k, &f).unwrap();
        let (mut out, stats) = plan.execute_with(&k, DiamondMode::Auto);
        assert_eq!(stats.csc_diamonds, 1, "sparse relation must go reverse via CSC: {stats:?}");
        assert_eq!(stats.forward_diamonds, 0);
        assert_eq!(out.pop().unwrap(), evaluate_packed_recursive(&k, &f).unwrap());

        // Control: a dense inner set (⊤ holds everywhere: CSC touches
        // every stored edge plus every world, dense rows cost 640 ones
        // × 10 words = 6400 ≫ 660) still picks the forward walk.
        let dense = Formula::diamond(ModalIndex::Any, &Formula::top());
        let plan = Plan::compile(&k, &dense).unwrap();
        let (_, stats) = plan.execute_with(&k, DiamondMode::Auto);
        assert_eq!(stats.forward_diamonds, 1, "dense inner must stay forward: {stats:?}");
        assert_eq!(stats.reverse_diamonds + stats.csc_diamonds, 0);
    }

    /// A hub model: every world points at world 0, which alone carries
    /// the marker degree. Predecessor rows are maximally dense, so the
    /// dense bit rows beat both the CSC gather (640 entries) and the
    /// forward sweep.
    fn hub_model(n: usize) -> Kripke {
        let mut degree = vec![0usize; n];
        degree[0] = 7;
        let rows: Vec<Vec<usize>> = (0..n).map(|_| vec![0usize]).collect();
        let mut relations = std::collections::BTreeMap::new();
        relations.insert(ModalIndex::Any, rows);
        Kripke::from_parts(crate::kripke::ModelVariant::MinusMinus, degree, relations).unwrap()
    }

    #[test]
    fn auto_keeps_dense_rows_for_dense_predecessors_under_the_cap() {
        if !auto_is_unpinned() {
            return;
        }
        // One satisfying world with 640 predecessors: dense reverse is
        // one 10-word row OR (cost 10), the CSC gather walks all 640
        // entries, the forward sweep visits 640 worlds + 640 pairs.
        let k = hub_model(640);
        assert!(k.predecessor_matrix_words() <= REVERSE_WORD_CAP);
        let f = Formula::diamond(ModalIndex::Any, &Formula::prop(7));
        let plan = Plan::compile(&k, &f).unwrap();
        let (mut out, stats) = plan.execute_with(&k, DiamondMode::Auto);
        assert_eq!(stats.reverse_diamonds, 1, "dense predecessors keep BitMatrix: {stats:?}");
        assert_eq!(stats.forward_diamonds + stats.csc_diamonds, 0);
        assert_eq!(out.pop().unwrap(), evaluate_packed_recursive(&k, &f).unwrap());
    }

    #[test]
    fn auto_picks_csc_above_the_dense_cap() {
        if !auto_is_unpinned() {
            return;
        }
        // The acceptance scenario: a sparse model big enough that the
        // n²-bit predecessor matrix is over the cap, with a sparse
        // inner set — before the CSC store existed, this diamond was
        // silently forced onto the forward sweep.
        let n = 12_000;
        let k = Kripke::k_mm(&generators::path(n));
        assert!(
            k.predecessor_matrix_words() > REVERSE_WORD_CAP,
            "model must sit above the dense cap: {} words",
            k.predecessor_matrix_words()
        );
        // Degree 1 holds exactly at the two path endpoints.
        let f = Formula::diamond(ModalIndex::Any, &Formula::prop(1));
        let plan = Plan::compile(&k, &f).unwrap();
        let (out, stats) = plan.execute_with(&k, DiamondMode::Auto);
        assert_eq!(stats.csc_diamonds, 1, "above-cap sparse diamond must go CSC: {stats:?}");
        assert_eq!(stats.forward_diamonds + stats.reverse_diamonds, 0);
        // Bit-identical to the forward engine on the same plan.
        let (fwd, fwd_stats) = plan.execute_with(&k, DiamondMode::Forward);
        assert_eq!(fwd_stats.forward_diamonds, 1);
        assert_eq!(out, fwd);
        // ⟨α⟩q₁ holds exactly at the endpoints' neighbours.
        assert_eq!(out[0].iter_ones().collect::<Vec<_>>(), vec![1, n - 2]);
    }

    #[test]
    fn reverse_override_knob_parses_or_panics() {
        // CI's knob matrix relies on unknown values failing loudly at
        // first use; force the parse under whatever environment this
        // process carries.
        let _ = reverse_override();
    }

    #[test]
    fn delta_override_knob_parses_or_panics() {
        // Same contract as PORTNUM_REVERSE: the CI rebuild matrix leg
        // must never silently run the repair path.
        let _ = delta_override();
    }

    /// A small suite exercising every op: atoms, boolean structure,
    /// nested and graded diamonds.
    fn delta_suite() -> Vec<Formula> {
        let p1 = Formula::prop(1);
        let p2 = Formula::prop(2);
        let dia = Formula::diamond(ModalIndex::Any, &p2);
        vec![
            p1.clone(),
            dia.clone(),
            Formula::diamond(ModalIndex::Any, &dia).and(&p1.not()),
            Formula::diamond_geq(ModalIndex::Any, 2, &p2).or(&dia),
            Formula::diamond(ModalIndex::Any, &Formula::diamond(ModalIndex::Any, &dia)),
        ]
    }

    #[test]
    fn checker_repair_matches_fresh_after_deltas() {
        use crate::kripke::ModelDelta;
        for g in [generators::path(24), generators::theorem13_witness().0] {
            let mut k = Kripke::k_mm(&g);
            let mut checker = ModelChecker::new(&k);
            for f in delta_suite() {
                checker.check(&f).unwrap();
            }
            // Two rounds of deltas: remove an edge, then re-add it
            // while crashing a world.
            let (v, &w) = (0..k.len())
                .find_map(|v| k.successors_dense(0, v).first().map(|w| (v, w)))
                .unwrap();
            let mut d1 = ModelDelta::new();
            d1.remove_edge(ModalIndex::Any, v as u32, w).remove_edge(ModalIndex::Any, w, v as u32);
            let mut d2 = ModelDelta::new();
            d2.add_edge(ModalIndex::Any, v as u32, w)
                .add_edge(ModalIndex::Any, w, v as u32)
                .crash_world((k.len() - 1) as u32);
            for delta in [d1, d2] {
                let cache = checker.detach();
                let touched = k.apply_delta(&delta).unwrap();
                checker = ModelChecker::resume(&k, cache, &touched);
                let mut fresh = ModelChecker::new(&k);
                for f in delta_suite() {
                    assert_eq!(
                        checker.check(&f).unwrap().to_bools(),
                        fresh.check(&f).unwrap().to_bools(),
                        "{g}: repaired check diverged on {f}"
                    );
                }
            }
            if delta_override() == DeltaOverride::Repair {
                let stats = checker.last_repair().expect("repair ran");
                assert!(stats.repaired_vectors + stats.rebuilt_vectors > 0);
            }
        }
    }

    #[test]
    fn checker_repair_touches_a_strict_subset_on_localized_deltas() {
        use crate::kripke::ModelDelta;
        if delta_override() != DeltaOverride::Repair {
            return; // the rebuild leg has no repair pass to observe
        }
        let mut k = Kripke::k_mm(&generators::path(256));
        let mut checker = ModelChecker::new(&k);
        for f in delta_suite() {
            checker.check(&f).unwrap();
        }
        let mut delta = ModelDelta::new();
        delta.remove_edge(ModalIndex::Any, 100, 101).remove_edge(ModalIndex::Any, 101, 100);
        let cache = checker.detach();
        let touched = k.apply_delta(&delta).unwrap();
        checker = ModelChecker::resume(&k, cache, &touched);
        let stats = *checker.last_repair().expect("repair ran");
        assert!(stats.repaired_vectors > 0);
        assert_eq!(stats.rebuilt_vectors, 0, "a 2-edge delta must stay out of the dense fallback");
        // The tentpole property: repair work scales with the delta's
        // ball, not the universe. Heights here are ≤ 3, so no vector's
        // frontier can exceed 2 + 2·3 worlds.
        assert!(stats.max_frontier <= 8, "frontier {} on a localized delta", stats.max_frontier);
        assert!(stats.repaired_worlds < k.len());
        let mut fresh = ModelChecker::new(&k);
        for f in delta_suite() {
            assert_eq!(
                checker.check(&f).unwrap().to_bools(),
                fresh.check(&f).unwrap().to_bools()
            );
        }
    }

    #[test]
    fn quotient_repair_stays_exact_and_minimum_base_recovers_coarsest() {
        use crate::kripke::ModelDelta;
        // A 6-cycle quotients to one world; cutting it open makes the
        // quotient grow — the repaired (possibly finer) partition must
        // still produce exact quotient-path answers, and minimum_base
        // must fall back to the coarsest partition.
        let mut k = Kripke::k_mm(&generators::cycle(6));
        let phi = Formula::diamond(ModalIndex::Any, &Formula::prop(2));
        let mut checker = ModelChecker::new(&k);
        let before = checker.check_via_quotient(&phi).unwrap();
        assert_eq!(before.to_bools(), checker.check(&phi).unwrap().to_bools());
        let mut delta = ModelDelta::new();
        delta.remove_edge(ModalIndex::Any, 0, 1).remove_edge(ModalIndex::Any, 1, 0);
        let cache = checker.detach();
        let touched = k.apply_delta(&delta).unwrap();
        checker = ModelChecker::resume(&k, cache, &touched);
        let via_quotient = checker.check_via_quotient(&phi).unwrap();
        let mut fresh = ModelChecker::new(&k);
        assert_eq!(via_quotient.to_bools(), fresh.check(&phi).unwrap().to_bools());
        if delta_override() == DeltaOverride::Repair {
            assert!(checker.last_repair().expect("repair ran").quotient_repaired);
        }
        // minimum_base drops the repaired quotient and recomputes the
        // coarsest one — identical to a fresh checker's.
        assert_eq!(*checker.minimum_base(), *fresh.minimum_base());
    }

    #[test]
    fn forced_parallel_chunks_instructions_and_matches_sequential() {
        // A deep diamond chain on a 16×16 grid: every level is a
        // singleton, so the parallel executor must split the per-world
        // loop (the world-chunking axis) and still agree bit for bit.
        let k = Kripke::k_mm(&generators::grid(16, 16));
        let mut f = Formula::prop(4);
        for _ in 0..6 {
            f = Formula::diamond(ModalIndex::Any, &f).or(&Formula::prop(2));
        }
        let plan = Plan::compile(&k, &f).unwrap();
        for mode in
            [DiamondMode::Auto, DiamondMode::Forward, DiamondMode::Reverse, DiamondMode::Csc]
        {
            let (seq, seq_stats) = plan.execute_with(&k, mode);
            let (par, par_stats) = plan.execute_forced_parallel(&k, mode);
            assert_eq!(seq, par, "mode {mode:?}");
            assert_eq!(seq_stats.executed, par_stats.executed);
            assert_eq!(seq_stats.forward_diamonds, par_stats.forward_diamonds);
            assert_eq!(seq_stats.reverse_diamonds, par_stats.reverse_diamonds);
            assert_eq!(seq_stats.csc_diamonds, par_stats.csc_diamonds);
            // (The un-forced run may chunk too when PORTNUM_POOL=force
            // is set, so only the forced side is asserted.)
            assert!(par_stats.chunked_ops > 0, "mode {mode:?}: {par_stats:?}");
        }
    }

    #[test]
    fn forced_parallel_runs_wide_levels_concurrently() {
        // Eight independent diamonds under one disjunction tree: they
        // all sit on the same DAG level, so the forced executor runs
        // them as one pool batch (the instruction-level axis).
        let k = Kripke::k_mm(&generators::grid(5, 5));
        let mut f = Formula::diamond(ModalIndex::Any, &Formula::prop(0));
        for d in 1..8 {
            f = f.or(&Formula::diamond(ModalIndex::Any, &Formula::prop(d)));
        }
        let plan = Plan::compile(&k, &f).unwrap();
        let (seq, seq_stats) = plan.execute_with(&k, DiamondMode::Auto);
        let (par, par_stats) = plan.execute_forced_parallel(&k, DiamondMode::Auto);
        assert_eq!(seq, par);
        assert_eq!(seq_stats.executed, par_stats.executed);
        assert!(par_stats.level_parallel_ops >= 8, "{par_stats:?}");
    }

    #[test]
    fn forced_parallel_reverse_diamonds_split_iter_ones() {
        // Pin the reverse path: sat bits spread over several words, so
        // the popcount split produces real chunks whose partial unions
        // must merge to the sequential answer.
        let k = Kripke::k_mm(&generators::cycle(200));
        let f = Formula::diamond(ModalIndex::Any, &Formula::prop(2)); // everything true inside
        let plan = Plan::compile(&k, &f).unwrap();
        let (seq, ss) = plan.execute_with(&k, DiamondMode::Reverse);
        let (par, ps) = plan.execute_forced_parallel(&k, DiamondMode::Reverse);
        assert_eq!(seq, par);
        assert_eq!(ss.reverse_diamonds, 1);
        assert_eq!(ps.reverse_diamonds, 1);
        assert!(ps.chunked_ops > 0, "{ps:?}");
        // An all-false inner set is the empty-union edge case.
        let none = Formula::diamond(ModalIndex::Any, &Formula::prop(9));
        let plan = Plan::compile(&k, &none).unwrap();
        let (seq, _) = plan.execute_with(&k, DiamondMode::Reverse);
        let (par, _) = plan.execute_forced_parallel(&k, DiamondMode::Reverse);
        assert_eq!(seq, par);
        assert!(seq[0].none());
    }

    #[test]
    fn forced_parallel_csc_diamonds_shard_the_entry_space() {
        // The CSC twin of the dense split test: the satisfying worlds
        // contribute hundreds of predecessor entries, so the
        // equal-entry shards produce real chunks whose partial gathers
        // must merge to the sequential answer.
        let k = Kripke::k_mm(&generators::cycle(200));
        let f = Formula::diamond(ModalIndex::Any, &Formula::prop(2)); // everything true inside
        let plan = Plan::compile(&k, &f).unwrap();
        let (seq, ss) = plan.execute_with(&k, DiamondMode::Csc);
        let (par, ps) = plan.execute_forced_parallel(&k, DiamondMode::Csc);
        assert_eq!(seq, par);
        assert_eq!(ss.csc_diamonds, 1);
        assert_eq!(ps.csc_diamonds, 1);
        assert!(ps.chunked_ops > 0, "{ps:?}");
        // An all-false inner set is the empty-gather edge case.
        let none = Formula::diamond(ModalIndex::Any, &Formula::prop(9));
        let plan = Plan::compile(&k, &none).unwrap();
        let (seq, _) = plan.execute_with(&k, DiamondMode::Csc);
        let (par, _) = plan.execute_forced_parallel(&k, DiamondMode::Csc);
        assert_eq!(seq, par);
        assert!(seq[0].none());
        // Graded counting chunks too (per-chunk sparse count maps,
        // merged once, thresholded after the merge) and still agrees
        // with both the sequential scatter and the recursive engine.
        let graded = Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(2));
        let plan = Plan::compile(&k, &graded).unwrap();
        let (seq, ss) = plan.execute_with(&k, DiamondMode::Csc);
        let (par, ps) = plan.execute_forced_parallel(&k, DiamondMode::Csc);
        assert_eq!(seq, par);
        assert_eq!(ss.csc_diamonds, ps.csc_diamonds);
        assert!(ps.chunked_ops > 0, "graded CSC must shard its counting: {ps:?}");
        assert_eq!(seq[0], evaluate_packed_recursive(&k, &graded).unwrap());
    }

    #[test]
    fn entry_shards_split_inside_hub_rows() {
        // A star's centre is one huge CSC row (every leaf points at
        // it); the entry shards must cut inside that row rather than
        // serialising it into one chunk, and the sharded gather must
        // still agree with the inline one.
        let k = Kripke::k_mm(&generators::star(300));
        let f = Formula::diamond(ModalIndex::Any, &Formula::prop(1)); // leaves satisfy q1
        let plan = Plan::compile(&k, &f).unwrap();
        let (seq, _) = plan.execute_with(&k, DiamondMode::Csc);
        let (par, ps) = plan.execute_forced_parallel(&k, DiamondMode::Csc);
        assert_eq!(seq, par);
        assert!(ps.chunked_ops > 0, "{ps:?}");
        // Directly: shard one hub row across many chunks and replay
        // the entries; together they must cover the row exactly once.
        let csc = k.predecessors_csc(0);
        let sat = Bitset::from_fn(k.len(), |w| w == 0); // the centre alone
        let shards = EntryShards::build(csc, &sat);
        assert_eq!(shards.total(), csc.row_len(0));
        let mut replayed = Vec::new();
        for r in shards.ranges(7) {
            shards.for_entries(csc, r, |v| replayed.push(v));
        }
        assert_eq!(replayed, csc.row(0));
    }

    #[test]
    fn level_schedule_is_a_topological_order() {
        // Operands always sit on strictly earlier levels, and the
        // schedule is a permutation of the instruction list.
        let k = Kripke::k_mm(&generators::grid(3, 3));
        let f = unshared_tower(5).and(&unshared_tower(3).not());
        let plan = Plan::compile(&k, &f).unwrap();
        assert_eq!(plan.sched.len(), plan.ops.len());
        let mut level_of = vec![0usize; plan.ops.len()];
        for l in 0..plan.level_bounds.len() - 1 {
            for &id in &plan.sched[plan.level_bounds[l]..plan.level_bounds[l + 1]] {
                level_of[id as usize] = l;
            }
        }
        for (id, op) in plan.ops.iter().enumerate() {
            op.for_each_operand(|a| {
                assert!(level_of[a as usize] < level_of[id], "operand on a later level");
            });
        }
        // Within a level, destination slots are pairwise distinct and
        // never alias an operand read on the same level.
        for l in 0..plan.level_bounds.len() - 1 {
            let ids = &plan.sched[plan.level_bounds[l]..plan.level_bounds[l + 1]];
            let dsts: std::collections::HashSet<u32> =
                ids.iter().map(|&id| plan.dst[id as usize]).collect();
            assert_eq!(dsts.len(), ids.len(), "level {l} reuses a destination");
            for &id in ids {
                plan.ops[id as usize].for_each_operand(|a| {
                    assert!(
                        !dsts.contains(&plan.dst[a as usize]),
                        "level {l} writes a slot it also reads"
                    );
                });
            }
        }
    }

    #[test]
    fn duplicate_roots_share_one_instruction() {
        let k = Kripke::k_mm(&generators::star(2));
        let f = Formula::prop(1);
        let plan = Plan::compile_suite(&k, [&f, &f, &f]).unwrap();
        assert_eq!(plan.root_count(), 3);
        assert_eq!(plan.len(), 1);
        let out = plan.execute(&k);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
    }

    #[test]
    fn fixpoint_override_knob_parses_or_panics() {
        // Same contract as PORTNUM_REVERSE / PORTNUM_DELTA: CI's dense
        // baseline leg must never silently run the frontier path.
        let _ = fixpoint_override();
    }

    /// Closed fixpoint formulas exercising µ, ν, nesting, boolean
    /// structure around binders, and grades inside bodies.
    fn fixpoint_suite() -> Vec<Formula> {
        let parse = |s: &str| crate::parser::parse(s).unwrap();
        vec![
            parse("mu X . X"),
            parse("nu X . X"),
            parse("mu X . q2 | <*,*> X"),
            parse("nu X . q2 & <*,*> X"),
            parse("mu X . q1 | <*,*>>=2 X"),
            parse("(mu X . q2 | <*,*> X) & !(nu Y . <*,*> Y)"),
            parse("nu Y . mu X . (q1 & Y) | <*,*> X"),
        ]
    }

    /// The [`fixpoint_suite`] shapes rebuilt over `index`, so each
    /// canonical variant gets fixpoints in its own modal family.
    fn fixpoint_suite_with(index: ModalIndex) -> Vec<Formula> {
        let x = Formula::var("X");
        let reach =
            Formula::mu("X", &Formula::prop(2).or(&Formula::diamond(index, &x))).unwrap();
        let safe = Formula::nu("X", &Formula::prop(2).and(&Formula::diamond(index, &x))).unwrap();
        let graded =
            Formula::mu("X", &Formula::prop(1).or(&Formula::diamond_geq(index, 2, &x))).unwrap();
        let nested = Formula::nu(
            "Y",
            &Formula::mu(
                "X",
                &Formula::prop(1).and(&Formula::var("Y")).or(&Formula::diamond(index, &x)),
            )
            .unwrap(),
        )
        .unwrap();
        vec![reach.clone(), safe.clone(), graded, reach.and(&safe.not()), nested]
    }

    #[test]
    fn fixpoint_plans_match_kleene_reference_on_all_variants() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        let models =
            [Kripke::k_pp(&g, &p), Kripke::k_mp(&g, &p), Kripke::k_pm(&g, &p), Kripke::k_mm(&g)];
        for k in &models {
            let index = k.indices().next().unwrap();
            for f in fixpoint_suite_with(index) {
                let plan = Plan::compile(k, &f).unwrap();
                let want = evaluate_packed_recursive(k, &f).unwrap();
                for mode in
                    [DiamondMode::Auto, DiamondMode::Forward, DiamondMode::Reverse, DiamondMode::Csc]
                {
                    let (mut got, stats) = plan.execute_with(k, mode);
                    assert_eq!(got.pop().unwrap(), want, "{f} under {mode:?} on {:?}", k.variant());
                    assert!(stats.fixpoints > 0, "{f} lowered without a fixpoint instruction");
                }
            }
        }
    }

    #[test]
    fn fixpoint_trivial_bodies_converge_immediately() {
        let k = Kripke::k_mm(&generators::cycle(5));
        let mu = Plan::compile(&k, &crate::parser::parse("mu X . X").unwrap()).unwrap();
        let (out, stats) = mu.execute_with(&k, DiamondMode::Auto);
        assert!(out[0].none(), "µX.X is ⊥");
        assert_eq!(stats.fixpoint_iters, 1, "⊥ is already a fixed point");
        let nu = Plan::compile(&k, &crate::parser::parse("nu X . X").unwrap()).unwrap();
        let (out, _) = nu.execute_with(&k, DiamondMode::Auto);
        assert_eq!(out[0].count_ones(), k.len(), "νX.X is ⊤");
    }

    #[test]
    fn fixpoint_reachability_iterates_and_frontier_stays_small() {
        // One goal world at the far end of a path: reachability needs a
        // full length-of-path sweep of iterations, but after the first
        // (dense) iteration the wave front is O(1) worlds per step — the
        // o(n·iters) pin. World n-1 of path(n) under K_MM has degree 1,
        // like world 0; q1 marks both ends, and reachability from every
        // world holds everywhere on an undirected path.
        let n = 512;
        let k = Kripke::k_mm(&generators::path(n));
        let f = crate::parser::parse("mu X . q1 | <*,*> X").unwrap();
        let plan = Plan::compile(&k, &f).unwrap();
        let (out, stats) = plan.execute_with(&k, DiamondMode::Auto);
        assert_eq!(out[0], evaluate_packed_recursive(&k, &f).unwrap());
        assert!(stats.fixpoint_iters > n / 4, "a path forces a long iteration chain: {stats:?}");
        if fixpoint_override() == FixpointOverride::Frontier {
            assert_eq!(stats.fixpoint_dense_passes, 1, "only the first iteration is dense");
            // Frontier accounting must beat whole-model re-evaluation by
            // a wide margin: n per iteration would be n·iters ≈ n²/2.
            let budget = 8 * n + stats.fixpoint_iters * 8;
            assert!(
                stats.fixpoint_frontier_worlds < budget,
                "frontier touched {} worlds over {} iterations (budget {budget})",
                stats.fixpoint_frontier_worlds,
                stats.fixpoint_iters,
            );
        } else {
            assert_eq!(stats.fixpoint_dense_passes, stats.fixpoint_iters);
        }
    }

    #[test]
    fn fixpoint_nested_matches_reference_under_forced_parallel() {
        let k = Kripke::k_mm(&generators::grid(7, 7));
        for f in fixpoint_suite() {
            let plan = Plan::compile(&k, &f).unwrap();
            let (seq, seq_stats) = plan.execute_with(&k, DiamondMode::Auto);
            let (par, par_stats) = plan.execute_forced_parallel(&k, DiamondMode::Auto);
            assert_eq!(seq, par, "{f}");
            assert_eq!(seq_stats.executed, par_stats.executed);
            assert_eq!(seq_stats.fixpoint_iters, par_stats.fixpoint_iters, "{f}");
            assert_eq!(seq[0], evaluate_packed_recursive(&k, &f).unwrap(), "{f}");
        }
    }

    #[test]
    fn checker_caches_and_prices_fixpoints() {
        let k = Kripke::k_mm(&generators::grid(5, 5));
        let f = crate::parser::parse("mu X . q2 | <*,*> X").unwrap();
        let mut checker = ModelChecker::new(&k);
        // Fixpoints are priced above a plain diamond: the estimate must
        // carry the iteration-aware 2× body + flip term.
        let plain = crate::parser::parse("<*,*> q2").unwrap();
        let fix_work = checker.estimate_work(std::slice::from_ref(&f)).unwrap();
        let plain_work = checker.estimate_work(std::slice::from_ref(&plain)).unwrap();
        assert!(fix_work > plain_work, "fixpoint priced {fix_work} ≤ diamond {plain_work}");
        let first = checker.check(&f).unwrap();
        assert_eq!(*first, evaluate_packed_recursive(&k, &f).unwrap());
        assert!(checker.stats().fixpoint_iters > 0);
        let iters_once = checker.stats().fixpoint_iters;
        // A repeat is a pure cache hit: same vector, no new iterations,
        // and the batch now prices as free.
        let again = checker.check(&f).unwrap();
        assert!(Rc::ptr_eq(&first, &again));
        assert_eq!(checker.stats().fixpoint_iters, iters_once);
        assert_eq!(checker.estimate_work(std::slice::from_ref(&f)).unwrap(), 0);
    }

    #[test]
    fn checker_repair_matches_fresh_after_deltas_with_fixpoints() {
        use crate::kripke::ModelDelta;
        let mut k = Kripke::k_mm(&generators::path(24));
        let mut checker = ModelChecker::new(&k);
        for f in fixpoint_suite() {
            checker.check(&f).unwrap();
        }
        // Cutting an edge splits the path: reachability answers genuinely
        // change, so the repair has real flips to propagate.
        let mut delta = ModelDelta::new();
        delta.remove_edge(ModalIndex::Any, 11, 12).remove_edge(ModalIndex::Any, 12, 11);
        let cache = checker.detach();
        let touched = k.apply_delta(&delta).unwrap();
        checker = ModelChecker::resume(&k, cache, &touched);
        let mut fresh = ModelChecker::new(&k);
        for f in fixpoint_suite() {
            assert_eq!(
                checker.check(&f).unwrap().to_bools(),
                fresh.check(&f).unwrap().to_bools(),
                "repaired fixpoint diverged on {f}"
            );
        }
    }
}
