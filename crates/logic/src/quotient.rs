//! Bisimulation quotients: the smallest Kripke model equivalent to a
//! given one.
//!
//! Collapsing a model along its bisimilarity partition yields the
//! *minimum base* — the Kripke-side analogue of the minimum base of a
//! graph fibration (Boldi–Vigna), reached here by partition refinement
//! instead of degree refinement. The quotient map is a functional
//! bisimulation, so by Fact 1 every ML/MML formula has the same truth
//! value at a world and at its block; model checking a large symmetric
//! model can therefore be done on its (often tiny) quotient.
//!
//! The construction uses *plain* bisimilarity. A set-based quotient
//! cannot preserve graded truth — `⟨α⟩≥2 φ` needs two distinct
//! successors, and a quotient block stands for many — so requests for a
//! graded-style partition are rejected.
//!
//! # Examples
//!
//! ```
//! use portnum_graph::{generators, PortNumbering};
//! use portnum_logic::bisim::{refine, BisimStyle};
//! use portnum_logic::{quotient, Kripke};
//!
//! // Under Lemma 15's symmetric numbering, the Petersen graph's K₊,₊
//! // collapses to a single world.
//! let g = generators::petersen();
//! let p = PortNumbering::symmetric_regular(&g)?;
//! let k = Kripke::k_pp(&g, &p);
//! let (q, map) = quotient(&k, &refine(&k, BisimStyle::Plain));
//! assert_eq!(q.len(), 1);
//! assert!(map.iter().all(|&b| b == 0));
//! # Ok::<(), portnum_graph::PortError>(())
//! ```

use crate::bisim::{refine_fixpoint, BisimClasses, BisimStyle};
use crate::kripke::Kripke;
use std::collections::BTreeMap;

/// Collapses `model` along a stable plain-bisimulation partition.
///
/// Returns the quotient model and the projection `map[v] = block of v`.
/// The quotient has one world per block, the common degree of the block
/// as its valuation, and `B →α C` iff some (equivalently, by stability:
/// every) member of `B` has an `α`-successor in `C`.
///
/// Every ML/MML formula `φ` satisfies
/// `model, v ⊨ φ  ⇔  quotient, map[v] ⊨ φ`.
///
/// # Panics
///
/// Panics if `classes` was computed with [`BisimStyle::Graded`], was
/// truncated before stabilising, or does not match the model's size.
pub fn quotient(model: &Kripke, classes: &BisimClasses) -> (Kripke, Vec<usize>) {
    assert_eq!(
        classes.style(),
        BisimStyle::Plain,
        "set-based quotients preserve only ungraded truth; use BisimStyle::Plain"
    );
    assert!(classes.is_stable(), "quotient needs a stable partition");
    let level = classes.final_level();
    assert_eq!(level.len(), model.len(), "partition does not match the model");

    let block_count = level.iter().max().map_or(0, |&m| m + 1);
    let mut degree = vec![usize::MAX; block_count];
    for (v, &b) in level.iter().enumerate() {
        if degree[b] == usize::MAX {
            degree[b] = model.degree(v);
        } else {
            debug_assert_eq!(
                degree[b],
                model.degree(v),
                "stable partitions refine the valuation"
            );
        }
    }

    let mut relations: BTreeMap<_, Vec<Vec<usize>>> = BTreeMap::new();
    for r in 0..model.relation_count() {
        let mut rows = vec![Vec::new(); block_count];
        for v in 0..model.len() {
            let b = level[v];
            rows[b].extend(model.successors_dense(r, v).iter().map(|&w| level[w as usize]));
        }
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
        }
        relations.insert(model.relation_index(r), rows);
    }

    let quotient = Kripke::from_parts(model.variant(), degree, relations)
        .expect("quotient worlds are in range and indices belong to the variant");
    (quotient, level.to_vec())
}

/// The *minimum base* of a model: its quotient by full plain
/// bisimilarity. The result has no two bisimilar worlds, so it is the
/// smallest model bisimulation-equivalent to the input.
///
/// Uses [`refine_fixpoint`] internally — only the final partition is
/// materialised, so the refinement history costs O(n), not O(n²).
pub fn minimum_base(model: &Kripke) -> (Kripke, Vec<usize>) {
    quotient(model, &refine_fixpoint(model, BisimStyle::Plain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::{bisimilar_across, refine, refine_bounded};
    use crate::formula::{Formula, ModalIndex};
    use portnum_graph::{generators, PortNumbering};

    fn ungraded_samples(max_port: usize, family: &dyn Fn(usize) -> ModalIndex) -> Vec<Formula> {
        let mut out = Vec::new();
        for d in 1..=3 {
            let q = Formula::prop(d);
            for i in 0..max_port {
                let dia = Formula::diamond(family(i), &q);
                out.push(dia.clone());
                out.push(Formula::box_(family(i), &q.or(&Formula::prop(2))));
                out.push(Formula::diamond(family(0), &dia).not());
            }
        }
        out
    }

    #[test]
    fn quotient_preserves_ungraded_truth() {
        let g = generators::theorem13_witness().0;
        let k = Kripke::k_mm(&g);
        // The suite runs through one per-model plan cache; its
        // `check_via_quotient` is this theorem, applied.
        let mut checker = crate::plan::ModelChecker::new(&k);
        assert!(checker.minimum_base().0.len() < k.len(), "the witness graph has symmetry");
        for f in ungraded_samples(1, &|_| ModalIndex::Any) {
            let orig = checker.check(&f).unwrap();
            let via_quotient = checker.check_via_quotient(&f).unwrap();
            assert_eq!(*orig, via_quotient, "{f}");
        }
    }

    #[test]
    fn quotient_preserves_truth_on_port_models() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        for (k, indexer) in [
            (Kripke::k_pm(&g, &p), (|i| ModalIndex::In(i)) as fn(usize) -> ModalIndex),
            (Kripke::k_mp(&g, &p), |j| ModalIndex::Out(j)),
        ] {
            let (q, map) = minimum_base(&k);
            let suite = ungraded_samples(3, &indexer);
            // Evaluate the whole suite on both sides through shared plans.
            let orig = crate::plan::Plan::compile_suite(&k, suite.iter()).unwrap().execute(&k);
            let quot = crate::plan::Plan::compile_suite(&q, suite.iter()).unwrap().execute(&q);
            for ((f, o), qt) in suite.iter().zip(&orig).zip(&quot) {
                for (v, &b) in map.iter().enumerate() {
                    assert_eq!(o.get(v), qt.get(b), "{f} at {v}");
                }
            }
        }
    }

    #[test]
    fn quotient_worlds_are_pairwise_non_bisimilar() {
        let g = generators::grid(3, 3);
        let k = Kripke::k_mm(&g);
        let (q, _) = minimum_base(&k);
        let classes = refine(&q, BisimStyle::Plain);
        for u in 0..q.len() {
            for v in (u + 1)..q.len() {
                assert!(!classes.bisimilar(u, v), "quotient must be minimal");
            }
        }
    }

    #[test]
    fn quotient_is_idempotent() {
        let g = generators::path(7);
        let k = Kripke::k_mm(&g);
        let (q1, _) = minimum_base(&k);
        let (q2, map2) = minimum_base(&q1);
        assert_eq!(q1.len(), q2.len());
        // The second projection is a bijection.
        let mut seen = vec![false; q2.len()];
        for &b in &map2 {
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn worlds_bisimilar_to_their_blocks() {
        // The quotient map is a bisimulation: v in the original is
        // bisimilar to map[v] in the quotient.
        let g = generators::star(4);
        let k = Kripke::k_mm(&g);
        let (q, map) = minimum_base(&k);
        for (v, &block) in map.iter().enumerate() {
            assert!(bisimilar_across(&k, v, &q, block, BisimStyle::Plain));
        }
    }

    #[test]
    fn symmetric_cycle_collapses_to_a_point() {
        let g = generators::cycle(7);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        let k = Kripke::k_pp(&g, &p);
        let (q, _) = minimum_base(&k);
        assert_eq!(q.len(), 1);
        // The single world has a successor under each of its indices.
        for index in q.indices() {
            assert_eq!(q.successors(0, index), &[0]);
        }
    }

    #[test]
    #[should_panic(expected = "BisimStyle::Plain")]
    fn graded_partitions_are_rejected() {
        let k = Kripke::k_mm(&generators::cycle(3));
        let classes = refine(&k, BisimStyle::Graded);
        let _ = quotient(&k, &classes);
    }

    #[test]
    #[should_panic(expected = "stable partition")]
    fn truncated_partitions_are_rejected() {
        let k = Kripke::k_mm(&generators::path(9));
        let classes = refine_bounded(&k, BisimStyle::Plain, 1);
        assert!(!classes.is_stable());
        let _ = quotient(&k, &classes);
    }
}
