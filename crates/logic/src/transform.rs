//! Formula transformations: simplification and negation normal form.
//!
//! Both transformations preserve extensions on every Kripke model (a
//! property-tested invariant), so they can be applied freely before the
//! Theorem-2 compilers — a smaller formula compiles to a distributed
//! algorithm with fewer tracked subformulas, and a shallower one to a
//! faster algorithm (running time = modal depth).

use crate::formula::{Formula, FormulaKind};

/// Bottom-up simplification: constant folding, double-negation and
/// idempotence elimination, and the graded-diamond absorption rules
/// `⟨α⟩≥0 φ ≡ ⊤` and `⟨α⟩≥k ⊥ ≡ ⊥` (for `k ≥ 1`).
///
/// The result is semantically equivalent to the input on every model,
/// never larger than the input, and never modally deeper.
///
/// # Examples
///
/// ```
/// use portnum_logic::{parse, simplify};
///
/// let f = parse("(q1 & true)")?;
/// assert_eq!(simplify(&f), parse("q1")?);
/// let g = parse("!!<*,*>>=0 q2")?;
/// assert_eq!(simplify(&g).to_string(), "true");
/// # Ok::<(), portnum_logic::ParseError>(())
/// ```
pub fn simplify(f: &Formula) -> Formula {
    match f.kind() {
        FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => f.clone(),
        FormulaKind::Not(a) => {
            let a = simplify(a);
            match a.kind() {
                FormulaKind::Top => Formula::bottom(),
                FormulaKind::Bottom => Formula::top(),
                FormulaKind::Not(inner) => inner.clone(),
                _ => a.not(),
            }
        }
        FormulaKind::And(a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            match (a.kind(), b.kind()) {
                (FormulaKind::Bottom, _) | (_, FormulaKind::Bottom) => Formula::bottom(),
                (FormulaKind::Top, _) => b,
                (_, FormulaKind::Top) => a,
                _ if a == b => a,
                _ => a.and(&b),
            }
        }
        FormulaKind::Or(a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            match (a.kind(), b.kind()) {
                (FormulaKind::Top, _) | (_, FormulaKind::Top) => Formula::top(),
                (FormulaKind::Bottom, _) => b,
                (_, FormulaKind::Bottom) => a,
                _ if a == b => a,
                _ => a.or(&b),
            }
        }
        FormulaKind::Diamond { index, grade, inner } => {
            if *grade == 0 {
                return Formula::top();
            }
            let inner = simplify(inner);
            if matches!(inner.kind(), FormulaKind::Bottom) {
                Formula::bottom()
            } else {
                Formula::diamond_geq(*index, *grade, &inner)
            }
        }
        FormulaKind::Var(_) => f.clone(),
        // Simplification never introduces binders or moves negations past
        // a variable (double negations are removed in pairs), so bodies
        // stay scope-valid and positive in their bound variable.
        FormulaKind::Mu { var, body } => Formula::mu_unchecked(var.clone(), simplify(body)),
        FormulaKind::Nu { var, body } => Formula::nu_unchecked(var.clone(), simplify(body)),
    }
}

/// Negation normal form: negations are pushed inward through Boolean
/// connectives (De Morgan, double negation) until they sit only in front
/// of atoms or graded diamonds.
///
/// Diamonds are the stopping point because the syntax has no dual
/// modality: `¬⟨α⟩≥k φ` ("at most `k-1` `α`-successors satisfy `φ`") has
/// no positive graded form here, matching the paper's grammar. The
/// result is semantically equivalent to the input on every model and has
/// the same modal depth.
///
/// # Examples
///
/// ```
/// use portnum_logic::{nnf, parse};
///
/// let f = parse("!(q1 & !q2)")?;
/// assert_eq!(nnf(&f).to_string(), "(!q1 | q2)");
/// # Ok::<(), portnum_logic::ParseError>(())
/// ```
pub fn nnf(f: &Formula) -> Formula {
    nnf_signed(f, false)
}

fn nnf_signed(f: &Formula, negate: bool) -> Formula {
    match f.kind() {
        FormulaKind::Top => {
            if negate {
                Formula::bottom()
            } else {
                Formula::top()
            }
        }
        FormulaKind::Bottom => {
            if negate {
                Formula::top()
            } else {
                Formula::bottom()
            }
        }
        FormulaKind::Prop(d) => {
            let atom = Formula::prop(*d);
            if negate {
                atom.not()
            } else {
                atom
            }
        }
        FormulaKind::Not(a) => nnf_signed(a, !negate),
        FormulaKind::And(a, b) => {
            let a = nnf_signed(a, negate);
            let b = nnf_signed(b, negate);
            if negate {
                a.or(&b)
            } else {
                a.and(&b)
            }
        }
        FormulaKind::Or(a, b) => {
            let a = nnf_signed(a, negate);
            let b = nnf_signed(b, negate);
            if negate {
                a.and(&b)
            } else {
                a.or(&b)
            }
        }
        FormulaKind::Diamond { index, grade, inner } => {
            let dia = Formula::diamond_geq(*index, *grade, &nnf_signed(inner, false));
            if negate {
                dia.not()
            } else {
                dia
            }
        }
        FormulaKind::Var(name) => {
            let var = Formula::var(name);
            if negate {
                var.not()
            } else {
                var
            }
        }
        // Binders are a stopping point like diamonds: `¬µX.φ ≡ νX.¬φ[¬X/X]`
        // needs substitution, so the negation stays outside. NNF of a body
        // positive in its variable is still positive (an even-parity
        // occurrence is reached with `negate == false`).
        FormulaKind::Mu { var, body } => {
            let fix = Formula::mu_unchecked(var.clone(), nnf_signed(body, false));
            if negate {
                fix.not()
            } else {
                fix
            }
        }
        FormulaKind::Nu { var, body } => {
            let fix = Formula::nu_unchecked(var.clone(), nnf_signed(body, false));
            if negate {
                fix.not()
            } else {
                fix
            }
        }
    }
}

/// Returns `true` if every negation in the formula is applied directly to
/// an atom or a diamond — i.e. the formula is in the normal form produced
/// by [`nnf`].
pub fn is_nnf(f: &Formula) -> bool {
    match f.kind() {
        FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => true,
        FormulaKind::Not(a) => matches!(
            a.kind(),
            FormulaKind::Prop(_)
                | FormulaKind::Diamond { .. }
                | FormulaKind::Var(_)
                | FormulaKind::Mu { .. }
                | FormulaKind::Nu { .. }
        ) && is_nnf_inner(a),
        FormulaKind::And(a, b) | FormulaKind::Or(a, b) => is_nnf(a) && is_nnf(b),
        FormulaKind::Diamond { inner, .. } => is_nnf(inner),
        FormulaKind::Var(_) => true,
        FormulaKind::Mu { body, .. } | FormulaKind::Nu { body, .. } => is_nnf(body),
    }
}

fn is_nnf_inner(f: &Formula) -> bool {
    match f.kind() {
        FormulaKind::Prop(_) | FormulaKind::Var(_) => true,
        FormulaKind::Diamond { inner, .. } => is_nnf(inner),
        FormulaKind::Mu { body, .. } | FormulaKind::Nu { body, .. } => is_nnf(body),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::formula::ModalIndex;
    use crate::kripke::Kripke;
    use crate::parser::parse;
    use portnum_graph::generators;

    fn assert_equivalent(a: &Formula, b: &Formula) {
        for g in [
            generators::figure1_graph(),
            generators::star(3),
            generators::theorem13_witness().0,
        ] {
            let k = Kripke::k_mm(&g);
            assert_eq!(
                evaluate(&k, a).unwrap(),
                evaluate(&k, b).unwrap(),
                "{a} vs {b} on {g}"
            );
        }
    }

    #[test]
    fn constant_folding() {
        for (input, expected) in [
            ("(q1 & true)", "q1"),
            ("(q1 & false)", "false"),
            ("(q1 | true)", "true"),
            ("(q1 | false)", "q1"),
            ("!!q1", "q1"),
            ("!true", "false"),
            ("(q1 & q1)", "q1"),
            ("(q1 | q1)", "q1"),
            ("<*,*>>=0 q1", "true"),
            ("<*,*> false", "false"),
            ("<*,*>>=2 (q1 & false)", "false"),
        ] {
            let f = parse(input).unwrap();
            let s = simplify(&f);
            assert_eq!(s, parse(expected).unwrap(), "simplify({input})");
            assert_equivalent(&f, &s);
        }
    }

    #[test]
    fn simplify_never_grows() {
        for input in [
            "!(q1 & !(q2 | false))",
            "<*,*>(<*,*> true & !false)",
            "((q1 | q1) & (q2 & true))",
        ] {
            let f = parse(input).unwrap();
            let s = simplify(&f);
            assert!(s.size() <= f.size(), "{f} grew to {s}");
            assert!(s.modal_depth() <= f.modal_depth());
            assert_equivalent(&f, &s);
        }
    }

    #[test]
    fn nnf_pushes_negations_to_literals() {
        for input in [
            "!(q1 & !q2)",
            "!(q1 | (q2 & !q3))",
            "!!(q1 | !!q2)",
            "!<*,*>(q1 & !q2)",
            "<*,*>!(q1 | q2)",
            "!(<*,*>>=2 q1 | !q3)",
        ] {
            let f = parse(input).unwrap();
            let n = nnf(&f);
            assert!(is_nnf(&n), "nnf({input}) = {n} is not in NNF");
            assert_eq!(n.modal_depth(), f.modal_depth(), "{input}");
            assert_equivalent(&f, &n);
        }
    }

    #[test]
    fn nnf_is_idempotent() {
        let f = parse("!(q1 & !(<*,*> q2 | !q3))").unwrap();
        let once = nnf(&f);
        assert_eq!(nnf(&once), once);
    }

    #[test]
    fn is_nnf_rejects_buried_negations() {
        assert!(is_nnf(&parse("(!q1 | q2)").unwrap()));
        assert!(is_nnf(&parse("!<*,*> q1").unwrap()));
        assert!(!is_nnf(&parse("!!q1").unwrap()));
        assert!(!is_nnf(&parse("!(q1 & q2)").unwrap()));
        assert!(!is_nnf(&parse("!true").unwrap()));
        assert!(!is_nnf(&parse("<*,*> !(q1 | q2)").unwrap()));
    }

    #[test]
    fn fixpoints_transform_structurally() {
        // simplify folds inside bodies without disturbing the binder
        let f = parse("mu X . (q1 & true) | <*,*> X").unwrap();
        assert_eq!(simplify(&f).to_string(), "(mu X . (q1 | <*,*> X))");
        // nnf stops at binders and keeps bodies positive
        let g = parse("!(q1 & nu X . [*,*] X)").unwrap();
        let n = nnf(&g);
        assert!(is_nnf(&n), "{n}");
        assert_eq!(nnf(&n), n);
        // a negated binder is a literal, like a negated diamond
        assert!(is_nnf(&parse("!mu X . q1 | <*,*> X").unwrap()));
        assert!(!is_nnf(&parse("mu X . !!X").unwrap()));
    }

    #[test]
    fn simplified_formulas_compile_faster() {
        // The practical payoff: fewer subformulas and shallower depth for
        // the Theorem-2 compiler, hence fewer rounds.
        let f = Formula::diamond(
            ModalIndex::Any,
            &parse("(q2 & true)").unwrap(),
        )
        .or(&Formula::top());
        let s = simplify(&f);
        assert_eq!(s, Formula::top());
        assert_eq!(s.modal_depth(), 0, "depth 1 collapsed to 0");
        assert_equivalent(&f, &s);
    }
}
