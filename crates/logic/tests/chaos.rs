//! Chaos harness: fuzzes (failpoint site × action × query) and pins
//! the resilience contract of ISSUE 6 —
//!
//! 1. **no wedge**: after any injected fault, the global pool serves
//!    the next query;
//! 2. **no torn cache**: the `OnceLock` CSC/dense stores and the
//!    checker's `Rc` truth vectors are committed whole or not at all;
//! 3. **bit-identical retry**: a query retried after a fault returns
//!    exactly the bits an uninjected run returns.
//!
//! The failpoint registry is process-global, so every test serialises
//! on one lock and tears the registry down before and after itself.

use portnum_graph::generators;
use portnum_graph::pool::WorkerPool;
use portnum_graph::resilience::{CancelToken, ExecControl, InterruptReason};
use portnum_logic::bisim::{self, BisimStyle};
use portnum_logic::plan::{DiamondMode, ModelChecker, Plan};
use portnum_logic::{Formula, Kripke, LogicError, ModalIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One registry, one test at a time.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    fail::teardown();
    guard
}

/// `(⟨⟩(⟨⟩ p2) ∨ p1) ∧ ¬p0` — a diamond tower with trailing
/// connectives, so every execution has instruction boundaries *after*
/// the diamonds (a cancel raised inside a diamond is observed at the
/// next boundary).
fn query_formula(depth: usize) -> Formula {
    let mut f = Formula::prop(2);
    for _ in 0..depth {
        f = Formula::diamond(ModalIndex::Any, &f);
    }
    f.or(&Formula::prop(1)).and(&Formula::prop(0).not())
}

/// `µX. q1 ∨ ⟨*,*⟩X` — endpoint reachability. On the 96-path the wave
/// front moves one world per Kleene iteration, so the
/// `plan-fixpoint-iter` site is hit ~n/2 times per query.
fn fixpoint_formula() -> Formula {
    Formula::mu(
        "X",
        &Formula::prop(1).or(&Formula::diamond(ModalIndex::Any, &Formula::var("X"))),
    )
    .expect("body is positive in X")
}

/// The query each site is exercised through: a closure running one
/// complete engine call on a **fresh model** (so lazily built caches
/// like the CSC/dense reverse stores are rebuilt — and their build
/// sites hit — on every invocation) and returning a comparable digest.
type Query = fn(&ExecControl) -> Result<Vec<u64>, LogicError>;

fn run_plan_seq(ctl: &ExecControl) -> Result<Vec<u64>, LogicError> {
    let k = chaos_model();
    let plan = Plan::compile(&k, &query_formula(4))?;
    let (truths, _) = plan.execute_controlled(&k, DiamondMode::Auto, ctl)?;
    Ok(truths.iter().flat_map(|b| b.words().iter().copied()).collect())
}

fn run_plan_pool(ctl: &ExecControl) -> Result<Vec<u64>, LogicError> {
    let k = chaos_model();
    let plan = Plan::compile(&k, &query_formula(4))?;
    let (truths, _) = plan.execute_forced_parallel_controlled(&k, DiamondMode::Auto, ctl)?;
    Ok(truths.iter().flat_map(|b| b.words().iter().copied()).collect())
}

fn run_plan_csc(ctl: &ExecControl) -> Result<Vec<u64>, LogicError> {
    let k = chaos_model();
    let plan = Plan::compile(&k, &query_formula(2))?;
    let (truths, _) = plan.execute_controlled(&k, DiamondMode::Csc, ctl)?;
    Ok(truths.iter().flat_map(|b| b.words().iter().copied()).collect())
}

fn run_plan_dense(ctl: &ExecControl) -> Result<Vec<u64>, LogicError> {
    let k = chaos_model();
    let plan = Plan::compile(&k, &query_formula(2))?;
    let (truths, _) = plan.execute_controlled(&k, DiamondMode::Reverse, ctl)?;
    Ok(truths.iter().flat_map(|b| b.words().iter().copied()).collect())
}

fn run_fixpoint_seq(ctl: &ExecControl) -> Result<Vec<u64>, LogicError> {
    let k = chaos_model();
    let plan = Plan::compile(&k, &fixpoint_formula())?;
    let (truths, _) = plan.execute_controlled(&k, DiamondMode::Auto, ctl)?;
    Ok(truths.iter().flat_map(|b| b.words().iter().copied()).collect())
}

fn run_fixpoint_pool(ctl: &ExecControl) -> Result<Vec<u64>, LogicError> {
    let k = chaos_model();
    let plan = Plan::compile(&k, &fixpoint_formula())?;
    let (truths, _) = plan.execute_forced_parallel_controlled(&k, DiamondMode::Auto, ctl)?;
    Ok(truths.iter().flat_map(|b| b.words().iter().copied()).collect())
}

fn run_checker(ctl: &ExecControl) -> Result<Vec<u64>, LogicError> {
    let k = chaos_model();
    let mut checker = ModelChecker::new(&k);
    let truth = checker.check_controlled(&query_formula(4), ctl)?;
    Ok(truth.words().to_vec())
}

fn run_refine(ctl: &ExecControl) -> Result<Vec<u64>, LogicError> {
    let k = chaos_model();
    let classes = bisim::refine_controlled(&k, BisimStyle::Plain, ctl)
        .map_err(LogicError::Interrupted)?;
    let level = classes.final_level();
    Ok(level.iter().map(|&c| c as u64).collect())
}

/// Every (site, query-that-hits-it) pair of the chaos matrix.
/// `pool-worker` is exercised separately (worker death + respawn lives
/// in the graph crate's pool tests; its action vocabulary is `return`,
/// not panic, so it stays out of the panic matrix).
const MATRIX: &[(&str, Query)] = &[
    ("plan-instr", run_plan_seq as Query),
    ("plan-instr", run_plan_pool as Query),
    ("plan-fixpoint-iter", run_fixpoint_seq as Query),
    ("plan-fixpoint-iter", run_fixpoint_pool as Query),
    ("checker-instr", run_checker as Query),
    ("refine-round", run_refine as Query),
    ("csc-build", run_plan_csc as Query),
    ("dense-build", run_plan_dense as Query),
    ("pool-dispatch", run_plan_pool as Query),
    ("pool-chunk", run_plan_pool as Query),
];

/// A long-diameter model: refinement needs many rounds, plans have
/// many instructions, and the pool paths engage under force.
fn chaos_model() -> Kripke {
    Kripke::k_mm(&generators::path(96))
}

fn assert_pool_not_wedged() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let hits = AtomicUsize::new(0);
    WorkerPool::global().run(7, &|_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 7, "global pool wedged");
}

#[test]
fn panic_at_every_site_then_bit_identical_retry() {
    let _g = serial();
    for &(site, query) in MATRIX {
        let baseline = query(&ExecControl::unrestricted()).expect("clean run");
        fail::cfg(site, "1*panic(chaos injection)").unwrap();
        let outcome =
            catch_unwind(AssertUnwindSafe(|| query(&ExecControl::unrestricted())));
        match outcome {
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_default();
                assert!(msg.contains("chaos injection"), "site {site}: foreign panic {msg:?}");
            }
            Ok(r) => panic!("site {site} was not hit by its query (got {:?})", r.is_ok()),
        }
        fail::teardown();
        // No wedge, no torn cache, bit-identical retry.
        assert_pool_not_wedged();
        let retry = query(&ExecControl::unrestricted()).expect("retry after panic");
        assert_eq!(retry, baseline, "site {site}: retry diverged after injected panic");
    }
}

#[test]
fn delay_at_every_site_completes_identically() {
    let _g = serial();
    for &(site, query) in MATRIX {
        let baseline = query(&ExecControl::unrestricted()).expect("clean run");
        fail::cfg(site, "2*sleep(10)").unwrap();
        let slowed = query(&ExecControl::unrestricted()).expect("delayed run completes");
        fail::teardown();
        assert_eq!(slowed, baseline, "site {site}: delay changed the bits");
        assert_pool_not_wedged();
    }
}

#[test]
fn cancel_at_every_site_interrupts_then_bit_identical_retry() {
    let _g = serial();
    for &(site, query) in MATRIX {
        let baseline = query(&ExecControl::unrestricted()).expect("clean run");
        let token = CancelToken::new();
        let t = token.clone();
        fail::cfg_callback(site, move || t.cancel());
        let ctl = ExecControl::with_cancel(token);
        match query(&ctl) {
            Err(LogicError::Interrupted(i)) => {
                assert_eq!(i.reason, InterruptReason::Cancelled, "site {site}")
            }
            Err(other) => panic!("site {site}: unexpected error {other}"),
            Ok(_) => panic!("site {site}: cancel injected at a hit site must interrupt"),
        }
        fail::teardown();
        assert_pool_not_wedged();
        let retry = query(&ExecControl::unrestricted()).expect("retry after cancel");
        assert_eq!(retry, baseline, "site {site}: retry diverged after cancellation");
    }
}

#[test]
fn cancelled_check_commits_nothing_and_retries_like_fresh() {
    let _g = serial();
    let k = chaos_model();
    let f = query_formula(4);
    let fresh_bits = ModelChecker::new(&k).check(&f).expect("fresh").words().to_vec();

    let mut checker = ModelChecker::new(&k);
    let token = CancelToken::new();
    let t = token.clone();
    fail::cfg_callback("checker-instr", move || t.cancel());
    let err = checker
        .check_controlled(&f, &ExecControl::with_cancel(token))
        .expect_err("cancel at the first instruction boundary must interrupt");
    assert!(matches!(err, LogicError::Interrupted(_)));
    fail::teardown();
    // Whole-or-nothing: the interrupted check committed no vectors.
    assert_eq!(checker.stats().computed, 0, "interrupted check must publish nothing");
    // Immediate retry on the same checker is bit-identical to fresh.
    let retry = checker.check(&f).expect("retry").words().to_vec();
    assert_eq!(retry, fresh_bits);
}

/// Cancel raised from *inside* a fixpoint loop — dozens of iterations
/// into the second of two fixpoints — must leave the checker cache
/// whole-or-nothing: the completed first fixpoint may be committed
/// (as a whole vector), the in-flight one must not be, and a retry on
/// the SAME checker is bit-identical to a fresh run (a torn cached
/// vector would be reused and poison the retry).
#[test]
fn cancelled_fixpoint_mid_iteration_leaves_cache_whole_or_nothing() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let _g = serial();
    let k = chaos_model();
    // Two slow fixpoints: reach = µX.q1∨◇X (≈ n/2 iterations on the
    // path), then νY.⟨⟩≥2 Y under a negation (the 2-core: one endpoint
    // world erodes per iteration, ≈ n/2 more). The cancel fires on the
    // 60th hit of the per-iteration site — after `reach` has converged
    // and committed, mid-flight inside the second loop.
    let reach = fixpoint_formula();
    let core = Formula::nu("Y", &Formula::diamond_geq(ModalIndex::Any, 2, &Formula::var("Y")))
        .expect("body is positive in Y");
    let f = reach.and(&core.not());
    let fresh_bits = ModelChecker::new(&k).check(&f).expect("fresh").words().to_vec();

    let mut checker = ModelChecker::new(&k);
    let token = CancelToken::new();
    let t = token.clone();
    let hits = Arc::new(AtomicUsize::new(0));
    let h = hits.clone();
    fail::cfg_callback("plan-fixpoint-iter", move || {
        if h.fetch_add(1, Ordering::Relaxed) + 1 == 60 {
            t.cancel();
        }
    });
    let err = checker
        .check_controlled(&f, &ExecControl::with_cancel(token))
        .expect_err("cancel on iteration 60 must interrupt");
    assert!(matches!(err, LogicError::Interrupted(_)));
    fail::teardown();
    assert!(hits.load(Ordering::Relaxed) >= 60, "site under-hit: not a mid-iteration cancel");
    // Whole vectors only: whatever was committed, a retry on the same
    // checker reuses it and still matches fresh bits exactly.
    let committed = checker.stats().computed;
    let retry = checker.check(&f).expect("retry").words().to_vec();
    assert_eq!(retry, fresh_bits, "torn fixpoint cache after mid-iteration cancel");
    assert!(
        checker.stats().computed > committed,
        "retry must recompute the uncommitted suffix"
    );
}

/// An already-expired deadline is observed at the fixpoint's own loop
/// boundary (not just between instructions): the query interrupts with
/// the typed reason, commits nothing for the in-flight op, and retries
/// bit-identically.
#[test]
fn expired_deadline_interrupts_inside_the_fixpoint_loop() {
    let _g = serial();
    let k = chaos_model();
    let f = fixpoint_formula();
    let fresh_bits = ModelChecker::new(&k).check(&f).expect("fresh").words().to_vec();
    let mut checker = ModelChecker::new(&k);
    let ctl = ExecControl {
        deadline: Some(portnum_graph::resilience::Deadline::after(std::time::Duration::ZERO)),
        ..ExecControl::unrestricted()
    };
    match checker.check_controlled(&f, &ctl) {
        Err(LogicError::Interrupted(i)) => {
            assert_eq!(i.reason, InterruptReason::DeadlineExceeded)
        }
        other => panic!("expired deadline must interrupt, got {:?}", other.is_ok()),
    }
    assert_eq!(checker.stats().computed, 0, "interrupted fixpoint must publish nothing");
    let retry = checker.check(&f).expect("retry").words().to_vec();
    assert_eq!(retry, fresh_bits);
}

/// A panic injected mid-iteration (40 clean hits first) unwinds out of
/// the executor without corrupting anything process-global: the pool
/// still serves and a fresh run of the same query is bit-identical.
#[test]
fn fixpoint_panic_mid_iteration_then_bit_identical_retry() {
    let _g = serial();
    let baseline = run_fixpoint_seq(&ExecControl::unrestricted()).expect("clean run");
    fail::cfg("plan-fixpoint-iter", "40*off->1*panic(chaos injection)").unwrap();
    let outcome =
        catch_unwind(AssertUnwindSafe(|| run_fixpoint_seq(&ExecControl::unrestricted())));
    match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default();
            assert!(msg.contains("chaos injection"), "foreign panic {msg:?}");
        }
        Ok(r) => panic!("iteration 41 was never reached (got {:?})", r.is_ok()),
    }
    fail::teardown();
    assert_pool_not_wedged();
    let retry = run_fixpoint_seq(&ExecControl::unrestricted()).expect("retry after panic");
    assert_eq!(retry, baseline, "retry diverged after mid-iteration panic");
}

#[test]
fn panicked_cache_build_leaves_oncelock_unset_not_torn() {
    let _g = serial();
    // Same long-lived model across the fault and the retry: the lazy
    // reverse stores survive, so a torn publication would be visible.
    let k = chaos_model();
    let f = query_formula(2);
    let plan = Plan::compile(&k, &f).expect("compiles");
    for (site, mode) in [("csc-build", DiamondMode::Csc), ("dense-build", DiamondMode::Reverse)] {
        fail::cfg(site, "1*panic(build chaos)").unwrap();
        let outcome =
            catch_unwind(AssertUnwindSafe(|| plan.execute_with(&k, mode)));
        assert!(outcome.is_err(), "site {site} must fire during the {mode:?} build");
        fail::teardown();
        // Retry on the SAME model rebuilds the store from scratch and
        // matches a fresh model bit for bit.
        let (retried, _) = plan.execute_with(&k, mode);
        let fresh_model = chaos_model();
        let fresh_plan = Plan::compile(&fresh_model, &f).expect("compiles");
        let (fresh, _) = fresh_plan.execute_with(&fresh_model, mode);
        assert_eq!(retried, fresh, "site {site}: torn {mode:?} cache after injected panic");
    }
}

#[test]
fn interrupted_refinement_retries_bit_identically() {
    let _g = serial();
    let k = chaos_model();
    let baseline = bisim::refine(&k, BisimStyle::Plain);
    // Cancel fired from inside round 1: the run errors at the round
    // boundary, and a retry reproduces the full level history.
    let token = CancelToken::new();
    let t = token.clone();
    fail::cfg_callback("refine-round", move || t.cancel());
    let err = bisim::refine_controlled(&k, BisimStyle::Plain, &ExecControl::with_cancel(token))
        .expect_err("path(96) refines over many rounds; the cancel must land");
    assert_eq!(err.reason, InterruptReason::Cancelled);
    fail::teardown();
    let retry = bisim::refine_controlled(&k, BisimStyle::Plain, &ExecControl::unrestricted())
        .expect("unrestricted retry");
    assert_eq!(retry.depth(), baseline.depth());
    for d in 0..=baseline.depth() {
        assert_eq!(retry.level(d), baseline.level(d), "level {d} diverged");
    }
}

#[test]
fn randomized_chaos_smoke_with_fixed_seed() {
    let _g = serial();
    let seed = std::env::var("PORTNUM_CHAOS_SEED")
        .ok()
        .map(|v| v.parse::<u64>().expect("PORTNUM_CHAOS_SEED must be an integer"))
        .unwrap_or(0xC0FFEE);
    let mut rng = StdRng::seed_from_u64(seed);
    let baselines: Vec<Vec<u64>> = MATRIX
        .iter()
        .map(|&(_, q)| q(&ExecControl::unrestricted()).expect("clean run"))
        .collect();
    for round in 0..48 {
        let pick = rng.random_range(0..MATRIX.len());
        let (site, query) = MATRIX[pick];
        let action = rng.random_range(0..3u32);
        let token = CancelToken::new();
        let ctl = match action {
            0 => {
                fail::cfg(site, "1*panic(chaos injection)").unwrap();
                ExecControl::unrestricted()
            }
            1 => {
                fail::cfg(site, "1*sleep(5)").unwrap();
                ExecControl::unrestricted()
            }
            _ => {
                let t = token.clone();
                fail::cfg_callback(site, move || t.cancel());
                ExecControl::with_cancel(token)
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| query(&ctl)));
        fail::teardown();
        match (action, outcome) {
            // Injected panics must surface as panics (payload checked
            // in the dense matrix test) — never as wrong bits.
            (0, Err(_)) => {}
            (0, Ok(r)) => panic!("round {round}: panic at {site} vanished ({:?})", r.is_ok()),
            // Delays must not change behaviour at all.
            (1, Ok(Ok(bits))) => assert_eq!(bits, baselines[pick], "round {round}: {site}"),
            (1, other) => panic!("round {round}: delay at {site} broke the query: {other:?}"),
            // Cancels must surface as Interrupted.
            (_, Ok(Err(LogicError::Interrupted(_)))) => {}
            (_, other) => panic!("round {round}: cancel at {site} => {:?}", other.is_ok()),
        }
        // Invariants after every single injection: pool serves, retry
        // is bit-identical.
        assert_pool_not_wedged();
        let retry = query(&ExecControl::unrestricted()).expect("retry");
        assert_eq!(retry, baselines[pick], "round {round}: retry diverged after {site}");
    }
}

#[test]
fn deadline_and_budget_interrupt_long_queries() {
    let _g = serial();
    let k = chaos_model();
    // An already-expired deadline trips before any work.
    let ctl = ExecControl {
        deadline: Some(portnum_graph::resilience::Deadline::after(
            std::time::Duration::ZERO,
        )),
        ..ExecControl::unrestricted()
    };
    match run_plan_seq(&ctl) {
        Err(LogicError::Interrupted(i)) => {
            assert_eq!(i.reason, InterruptReason::DeadlineExceeded)
        }
        other => panic!("expired deadline must interrupt, got {:?}", other.is_ok()),
    }
    // A one-unit work budget trips at the first instruction boundary.
    let ctl = ExecControl::with_budget(portnum_graph::resilience::ExecBudget {
        max_touched_words: Some(1),
        ..Default::default()
    });
    match run_checker(&ctl) {
        Err(LogicError::Interrupted(i)) => {
            assert_eq!(i.reason, InterruptReason::BudgetExceeded)
        }
        other => panic!("tiny work budget must interrupt, got {:?}", other.is_ok()),
    }
    // Budgets degrade gracefully where the contract says so: a zero
    // slot-words ceiling forces sequential execution but still answers.
    let tight_slots = ExecControl::with_budget(portnum_graph::resilience::ExecBudget {
        max_slot_words: Some(0),
        ..Default::default()
    });
    let plan = Plan::compile(&k, &query_formula(4)).expect("compiles");
    let (seq, stats) = plan
        .execute_controlled(&k, DiamondMode::Auto, &tight_slots)
        .expect("slot budget degrades, never fails");
    assert_eq!(stats.chunked_ops + stats.level_parallel_ops, 0, "degraded run must be sequential");
    assert_eq!(seq, plan.execute(&k), "degraded run must match the default bits");
    // A zero cache-words ceiling answers but publishes nothing.
    let mut checker = ModelChecker::new(&k);
    let no_cache = ExecControl::with_budget(portnum_graph::resilience::ExecBudget {
        max_cache_words: Some(0),
        ..Default::default()
    });
    let truth = checker
        .check_controlled(&query_formula(4), &no_cache)
        .expect("cache budget never fails the query");
    assert_eq!(truth.words().to_vec(), ModelChecker::new(&k).check(&query_formula(4)).unwrap().words().to_vec());
    assert_eq!(checker.stats().computed, 0, "over-budget cache must not publish");
}
