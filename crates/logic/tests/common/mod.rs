//! Shared proptest strategies and helpers for the logic-crate
//! integration suites (`proptest_eval`, `proptest_logic`,
//! `proptest_csc`, `proptest_refinement`): one definition of the
//! random-model / random-formula input distribution, so the binaries
//! cannot silently drift onto different test spaces.
//!
//! Each test binary compiles its own copy of this module and uses a
//! subset of it, hence the file-level `dead_code` allowance.
#![allow(dead_code)]

use portnum_graph::{Graph, PortNumbering};
use portnum_logic::{Formula, FormulaKind, Kripke, ModalIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random simple graphs on 2–9 nodes with an arbitrary edge mask.
pub fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=9).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut b = Graph::builder(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if mask[idx] {
                        b.edge(u, v).expect("pairs distinct");
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

/// Random formulas whose modal indices come from `mk(in_port, out_port)`
/// (so each canonical variant gets formulas of its own index family)
/// with diamond grades drawn from {0, 1, 2, 3}.
pub fn arb_formula_with(mk: fn(usize, usize) -> ModalIndex) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::top()),
        Just(Formula::bottom()),
        (0usize..=4).prop_map(Formula::prop),
    ];
    leaf.prop_recursive(4, 20, 3, move |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(&b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(&b)),
            (0usize..=3, 0usize..=2, 0usize..=2, inner)
                .prop_map(move |(k, i, j, f)| Formula::diamond_geq(mk(i, j), k, &f)),
        ]
    })
}

/// Closed µ-calculus fixpoint formulas over the index family drawn by
/// `mk(in_port, out_port)`.
///
/// `open(lo, next, depth)` generates formulas whose variable leaves are
/// drawn from `{X{lo}, …, X{next-1}}` — the binders in scope whose
/// occurrence here would be positive. Negation recurses with `lo =
/// next` (no outer variable may appear under it, keeping positivity),
/// a binder introduces the globally fresh name `X{next}` (so shadowing
/// never arises), and every other connective passes the window
/// through. The root is always a binder, so every draw is a closed
/// formula containing at least one fixpoint.
pub fn arb_mu_formula(mk: fn(usize, usize) -> ModalIndex) -> impl Strategy<Value = Formula> {
    fn open(
        mk: fn(usize, usize) -> ModalIndex,
        lo: usize,
        next: usize,
        depth: u32,
    ) -> BoxedStrategy<Formula> {
        let mut leaves = vec![
            Just(Formula::top()).boxed(),
            Just(Formula::bottom()).boxed(),
            (0usize..=4).prop_map(Formula::prop).boxed(),
        ];
        if lo < next {
            leaves.push((lo..next).prop_map(|i| Formula::var(&format!("X{i}"))).boxed());
        }
        let leaf = proptest::Union::new(leaves);
        if depth == 0 {
            return leaf.boxed();
        }
        prop_oneof![
            leaf,
            open(mk, next, next, depth - 1).prop_map(|f| f.not()),
            (open(mk, lo, next, depth - 1), open(mk, lo, next, depth - 1))
                .prop_map(|(a, b)| a.and(&b)),
            (open(mk, lo, next, depth - 1), open(mk, lo, next, depth - 1))
                .prop_map(|(a, b)| a.or(&b)),
            (0usize..=3, 0usize..=2, 0usize..=2, open(mk, lo, next, depth - 1))
                .prop_map(move |(k, i, j, f)| Formula::diamond_geq(mk(i, j), k, &f)),
            (any::<bool>(), open(mk, lo, next + 1, depth - 1)).prop_map(move |(greatest, body)| {
                let name = format!("X{next}");
                if greatest {
                    Formula::nu(&name, &body).expect("positive by construction")
                } else {
                    Formula::mu(&name, &body).expect("positive by construction")
                }
            }),
        ]
        .boxed()
    }
    (any::<bool>(), open(mk, 0, 1, 3)).prop_map(|(greatest, body)| {
        let f = if greatest {
            Formula::nu("X0", &body).expect("positive by construction")
        } else {
            Formula::mu("X0", &body).expect("positive by construction")
        };
        assert!(f.is_closed(), "strategy generated an open formula: {f}");
        f
    })
}

/// All four canonical models of `g` under a seeded random numbering.
pub fn all_variants(g: &Graph, seed: u64) -> [Kripke; 4] {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = PortNumbering::random(g, &mut rng);
    [Kripke::k_pp(g, &p), Kripke::k_mp(g, &p), Kripke::k_pm(g, &p), Kripke::k_mm(g)]
}

/// Strips grades so a random formula lands in ML/MML (set-based
/// quotients and plain bisimulation preserve only ungraded truth).
pub fn ungrade(f: &Formula) -> Formula {
    match f.kind() {
        FormulaKind::Top => Formula::top(),
        FormulaKind::Bottom => Formula::bottom(),
        FormulaKind::Prop(d) => Formula::prop(*d),
        FormulaKind::Not(a) => ungrade(a).not(),
        FormulaKind::And(a, b) => ungrade(a).and(&ungrade(b)),
        FormulaKind::Or(a, b) => ungrade(a).or(&ungrade(b)),
        FormulaKind::Diamond { index, inner, .. } => Formula::diamond(*index, &ungrade(inner)),
        FormulaKind::Var(name) => Formula::var(name),
        // Ungrading preserves negation structure, so bodies stay positive
        // and scoped — the checked constructors cannot fail.
        FormulaKind::Mu { var, body } => {
            Formula::mu(var, &ungrade(body)).expect("ungrading preserves binder validity")
        }
        FormulaKind::Nu { var, body } => {
            Formula::nu(var, &ungrade(body)).expect("ungrading preserves binder validity")
        }
    }
}

/// Rebuilds `f` node by node so the copy is structurally equal to the
/// original but shares none of its `Arc`s — the dedup case pointer
/// memoisation cannot see.
pub fn deep_clone(f: &Formula) -> Formula {
    match f.kind() {
        FormulaKind::Top => Formula::top(),
        FormulaKind::Bottom => Formula::bottom(),
        FormulaKind::Prop(d) => Formula::prop(*d),
        FormulaKind::Not(a) => deep_clone(a).not(),
        FormulaKind::And(a, b) => deep_clone(a).and(&deep_clone(b)),
        FormulaKind::Or(a, b) => deep_clone(a).or(&deep_clone(b)),
        FormulaKind::Diamond { index, grade, inner } => {
            Formula::diamond_geq(*index, *grade, &deep_clone(inner))
        }
        FormulaKind::Var(name) => Formula::var(name),
        // A structural rebuild cannot invalidate scoping or positivity.
        FormulaKind::Mu { var, body } => {
            Formula::mu(var, &deep_clone(body)).expect("rebuild preserves binder validity")
        }
        FormulaKind::Nu { var, body } => {
            Formula::nu(var, &deep_clone(body)).expect("rebuild preserves binder validity")
        }
    }
}
