//! Bridge between the machine crate's synchronous simulator and the
//! modal µ-fragment (satellite 4 of ISSUE 10, after Reiter's
//! characterization: fixpoints are the logic of machine runs).
//!
//! Each seeded protocol run induces a **run graph**: one world per
//! space-time configuration `(v, t)` for `t = 0..=T`, with an edge
//! `(v, t) → (u, t + 1)` whenever `u` is `v` or one of its neighbours
//! (the information-flow cone of the synchronous schedule). The *goal*
//! worlds are the stopping events — `(v, t)` with `stop_time(v) = t` —
//! marked through the valuation (`q1` at goals, `q0` elsewhere).
//!
//! Reachability `µX. q1 ∨ ⟨*,*⟩X` over that model must agree, world
//! for world, with a brute-force reverse BFS from the goal set — for
//! every protocol, through the parser, the Kleene reference, the
//! compiled plan (all diamond modes), and the caching checker.

use portnum_graph::{generators, Graph, PortNumbering};
use portnum_logic::plan::{DiamondMode, ModelChecker, Plan};
use portnum_logic::{
    evaluate_packed_recursive, parse, Kripke, KripkeBuilder, ModalIndex, ModelVariant,
};
use portnum_machine::{Payload, Simulator, Status, VectorAlgorithm};
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Three protocols with distinct stopping profiles
// ---------------------------------------------------------------------

/// Stops after exactly `degree` rounds (isolated nodes at time 0).
#[derive(Debug)]
struct CountdownFromDegree;

impl VectorAlgorithm for CountdownFromDegree {
    type State = usize;
    type Msg = ();
    type Output = usize;

    fn init(&self, degree: usize) -> Status<usize, usize> {
        if degree == 0 {
            Status::Stopped(0)
        } else {
            Status::Running(degree)
        }
    }

    fn message(&self, _state: &usize, _port: usize) {}

    fn step(&self, state: &usize, _received: &[Payload<()>]) -> Status<usize, usize> {
        if *state == 1 {
            Status::Stopped(0)
        } else {
            Status::Running(state - 1)
        }
    }
}

/// A wave from the leaves: nodes of degree ≤ 1 stop at time 0, every
/// other node stops one round after first hearing silence, and a round
/// cap catches leafless cores (cycles never hear silence).
#[derive(Debug)]
struct SilenceWave {
    cap: usize,
}

impl VectorAlgorithm for SilenceWave {
    type State = usize; // rounds elapsed
    type Msg = ();
    type Output = usize;

    fn init(&self, degree: usize) -> Status<usize, usize> {
        if degree <= 1 {
            Status::Stopped(0)
        } else {
            Status::Running(0)
        }
    }

    fn message(&self, _state: &usize, _port: usize) {}

    fn step(&self, state: &usize, received: &[Payload<()>]) -> Status<usize, usize> {
        let round = state + 1;
        if received.iter().any(Payload::is_silent) || round >= self.cap {
            Status::Stopped(round)
        } else {
            Status::Running(round)
        }
    }
}

/// Stops once `round ≥ degree`, reporting the silence it heard (the
/// staggered profile from the simulator's own suite).
#[derive(Debug)]
struct StopAtDegree;

impl VectorAlgorithm for StopAtDegree {
    type State = (usize, usize, usize); // (round, degree, silent heard)
    type Msg = u8;
    type Output = usize;

    fn init(&self, degree: usize) -> Status<(usize, usize, usize), usize> {
        if degree == 0 {
            Status::Stopped(0)
        } else {
            Status::Running((0, degree, 0))
        }
    }

    fn message(&self, _state: &(usize, usize, usize), _port: usize) -> u8 {
        0
    }

    fn step(
        &self,
        &(round, degree, silent): &(usize, usize, usize),
        received: &[Payload<u8>],
    ) -> Status<(usize, usize, usize), usize> {
        let silent = silent + received.iter().filter(|p| p.is_silent()).count();
        let round = round + 1;
        if round >= degree {
            Status::Stopped(silent)
        } else {
            Status::Running((round, degree, silent))
        }
    }
}

// ---------------------------------------------------------------------
// Run graph construction and the brute-force side
// ---------------------------------------------------------------------

/// The space-time run graph of an execution with stopping time `t_max`:
/// world `(v, t)` is id `t·n + v`, goal worlds carry valuation 1.
struct RunGraph {
    worlds: usize,
    edges: Vec<(u32, u32)>,
    goal: Vec<bool>,
}

fn run_graph(g: &Graph, stop_times: &[usize], t_max: usize) -> RunGraph {
    let n = g.len();
    let worlds = n * (t_max + 1);
    let mut edges = Vec::new();
    for t in 0..t_max {
        for v in g.nodes() {
            let from = (t * n + v) as u32;
            edges.push((from, ((t + 1) * n + v) as u32));
            for &u in g.neighbors(v) {
                edges.push((from, ((t + 1) * n + u) as u32));
            }
        }
    }
    let mut goal = vec![false; worlds];
    for (v, &st) in stop_times.iter().enumerate() {
        goal[st * n + v] = true;
    }
    RunGraph { worlds, edges, goal }
}

fn to_kripke(rg: &RunGraph) -> Kripke {
    KripkeBuilder::new(ModelVariant::MinusMinus, rg.worlds)
        .relation(ModalIndex::Any, || rg.edges.iter().copied())
        .degrees(rg.goal.iter().map(|&is_goal| usize::from(is_goal)).collect())
        .build()
        .expect("run graphs are well-formed")
}

/// Brute force: `can_reach[w]` ⟺ some goal world is reachable from `w`
/// (including `w` itself) — a reverse BFS from the goal set.
fn bfs_reaches_goal(rg: &RunGraph) -> Vec<bool> {
    let mut preds = vec![Vec::new(); rg.worlds];
    for &(from, to) in &rg.edges {
        preds[to as usize].push(from as usize);
    }
    let mut reach = rg.goal.clone();
    let mut queue: Vec<usize> = (0..rg.worlds).filter(|&w| reach[w]).collect();
    while let Some(w) = queue.pop() {
        for &p in &preds[w] {
            if !reach[p] {
                reach[p] = true;
                queue.push(p);
            }
        }
    }
    reach
}

fn check_protocol<A>(algo: &A, g: &Graph, seed: u64)
where
    A: VectorAlgorithm + std::fmt::Debug,
    A::Msg: portnum_machine::MessageSize,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let p = PortNumbering::random(g, &mut rng);
    let run = Simulator::new().run(algo, g, &p).expect("protocols terminate");
    let rg = run_graph(g, run.stop_times(), run.rounds());
    let expected = bfs_reaches_goal(&rg);

    let k = to_kripke(&rg);
    let f = parse("mu X . q1 | <*,*> X").expect("reachability parses");

    // The Kleene reference, the compiled plan under every diamond
    // dispatch mode, and the caching checker must all equal the BFS.
    let label = format!("{algo:?} on {g} (seed {seed})");
    let reference = evaluate_packed_recursive(&k, &f).expect("closed formula");
    assert_eq!(reference.to_bools(), expected, "Kleene reference vs BFS: {label}");
    let plan = Plan::compile(&k, &f).expect("compiles");
    for mode in [DiamondMode::Auto, DiamondMode::Forward, DiamondMode::Reverse, DiamondMode::Csc]
    {
        let (mut out, _) = plan.execute_with(&k, mode);
        assert_eq!(out.pop().unwrap().to_bools(), expected, "plan {mode:?} vs BFS: {label}");
    }
    let mut checker = ModelChecker::new(&k);
    assert_eq!(checker.check(&f).expect("checks").to_bools(), expected, "checker vs BFS: {label}");
}

// ---------------------------------------------------------------------
// The matrix: ≥3 seeded protocols, several graph shapes each
// ---------------------------------------------------------------------

#[test]
fn reachability_on_run_graphs_agrees_with_bfs() {
    let mut rng = StdRng::seed_from_u64(0xB21D6E);
    let shapes: Vec<Graph> = vec![
        generators::gnp(24, 0.12, &mut rng),
        generators::random_tree(30, &mut rng),
        generators::random_regular(20, 3, &mut rng),
        generators::grid(4, 5),
    ];
    for (i, g) in shapes.iter().enumerate() {
        let seed = 0x5EED + i as u64;
        check_protocol(&CountdownFromDegree, g, seed);
        check_protocol(&SilenceWave { cap: 6 }, g, seed);
        check_protocol(&StopAtDegree, g, seed);
    }
}

/// The goal layer is genuinely non-trivial on at least one instance:
/// some worlds can reach a stopping event and some cannot (final-layer
/// worlds of already-stopped nodes have no successors and no goal), so
/// the test above is not vacuously comparing all-true vectors.
#[test]
fn run_graph_reachability_is_not_vacuous() {
    let g = generators::star(4);
    let p = PortNumbering::consistent(&g);
    let run = Simulator::new().run(&StopAtDegree, &g, &p).expect("terminates");
    let rg = run_graph(&g, run.stop_times(), run.rounds());
    let reach = bfs_reaches_goal(&rg);
    assert!(reach.iter().any(|&b| b), "some world reaches a goal");
    assert!(!reach.iter().all(|&b| b), "some world must miss every goal");
    let k = to_kripke(&rg);
    let f = parse("mu X . q1 | <*,*> X").expect("parses");
    assert_eq!(evaluate_packed_recursive(&k, &f).expect("closed").to_bools(), reach);
}
