//! Pool panic-reuse regression tests: a job panic injected inside a
//! pool chunk (`pool-chunk` failpoint) must surface at the caller, and
//! the **same global pool** must complete the next identical call —
//! one test per pool entry point (plan level execution, refinement
//! encode, CSC chunking).
//!
//! The whole binary runs with `PORTNUM_POOL=force` so every entry
//! point drives the pool even on the small models used here. The gate
//! reads the variable once per process, so it is set under the same
//! serial lock that protects the process-global failpoint registry,
//! before the first engine call.

use portnum_graph::generators;
use portnum_logic::bisim::{self, BisimStyle};
use portnum_logic::plan::{DiamondMode, Plan};
use portnum_logic::{Formula, Kripke, ModalIndex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serialises tests, forces the pool gate, and resets the registry.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    // First locker wins the race to set the var before the once-per-
    // process gate parse; later lockers find it already set.
    std::env::set_var("PORTNUM_POOL", "force");
    fail::teardown();
    guard
}

fn model() -> Kripke {
    Kripke::k_mm(&generators::path(96))
}

/// `(⟨⟩p0 ∨ ⟨⟩p1) ∧ ¬⟨⟩p2` — three independent diamonds on one plan
/// level, so forced execution exercises level parallelism.
fn wide_formula() -> Formula {
    let d0 = Formula::diamond(ModalIndex::Any, &Formula::prop(0));
    let d1 = Formula::diamond(ModalIndex::Any, &Formula::prop(1));
    let d2 = Formula::diamond(ModalIndex::Any, &Formula::prop(2));
    d0.or(&d1).and(&d2.not())
}

/// Injects a one-shot panic at `pool-chunk`, runs `entry` expecting the
/// panic to surface, then re-runs `entry` on the same (global) pool and
/// returns the clean result for comparison against a baseline.
fn panic_then_reuse<T: Send>(entry: impl Fn() -> T + Send + Sync) -> T {
    fail::cfg("pool-chunk", "1*panic(injected chunk panic)").unwrap();
    let outcome = catch_unwind(AssertUnwindSafe(&entry));
    fail::teardown();
    let payload = match outcome {
        Err(p) => p,
        Ok(_) => panic!("the injected chunk panic must reach the caller"),
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(msg.contains("injected chunk panic"), "foreign panic: {msg:?}");
    entry()
}

#[test]
fn plan_level_execution_reuses_pool_after_chunk_panic() {
    let _g = serial();
    let k = model();
    let plan = Plan::compile(&k, &wide_formula()).expect("compiles");
    let baseline = plan.execute(&k);
    let reused = panic_then_reuse(|| plan.execute_with(&k, DiamondMode::Auto).0);
    assert_eq!(reused, baseline);
}

#[test]
fn refinement_encode_reuses_pool_after_chunk_panic() {
    let _g = serial();
    let k = model();
    let baseline = bisim::refine(&k, BisimStyle::Plain);
    let reused = panic_then_reuse(|| bisim::refine(&k, BisimStyle::Plain));
    assert_eq!(reused.depth(), baseline.depth());
    assert_eq!(reused.final_level(), baseline.final_level());
}

#[test]
fn csc_chunking_reuses_pool_after_chunk_panic() {
    let _g = serial();
    let k = model();
    // A diamond over ⊤ saturates the operand, so the CSC gather has the
    // densest possible `iter_ones` split to chunk over.
    let f = Formula::diamond(ModalIndex::Any, &Formula::top())
        .and(&Formula::prop(1).not());
    let plan = Plan::compile(&k, &f).expect("compiles");
    let baseline = plan.execute_with(&k, DiamondMode::Csc).0;
    let reused = panic_then_reuse(|| plan.execute_with(&k, DiamondMode::Csc).0);
    assert_eq!(reused, baseline);
}
