//! Differential matrix for the three-way diamond path, run **above a
//! test-shrunk dense cap** so the CSC gather actually fires on
//! proptest-sized models.
//!
//! The real [`REVERSE_WORD_CAP`] sits at 2²¹ words — far beyond any
//! model proptest can afford — so every test in this binary first
//! shrinks the effective cap to [`TEST_CAP`] words. Models with more
//! than `TEST_CAP` worlds (`predecessor_matrix_words() == n` for `n ≤
//! 64`) are then "huge": the dense `BitMatrix` rows are illegal and
//! the reverse path must run on the CSC store, exactly as it does
//! beyond 2²¹ words in production.
//!
//! The matrix: all four canonical variants × random formulas with
//! grades {0, 1, k} × every [`DiamondMode`] × sequential and
//! pool-forced execution, each pinned bit-identical to
//! [`evaluate_packed_recursive`] — plus strategy-count assertions that
//! the over-cap models really did take the CSC path.
//!
//! The cap override is process-global, which is why this matrix lives
//! in its own test binary: every test here shrinks the cap to the same
//! value, so concurrent tests can never flip a strategy mid-run.

mod common;

use common::{all_variants, arb_formula_with, arb_graph};
use portnum_logic::plan::{
    set_reverse_word_cap_for_tests, DiamondMode, Plan, REVERSE_WORD_CAP,
};
use portnum_logic::{evaluate_packed_recursive, Formula, Kripke, ModalIndex};
use proptest::prelude::*;

/// The shrunk dense cap (in `u64` words) every test in this binary
/// runs under. `arb_graph` generates 2–9 worlds, so roughly half the
/// generated models sit just above it — the "huge sparse model"
/// regime, scaled down.
const TEST_CAP: usize = 4;

const _: () = assert!(TEST_CAP < REVERSE_WORD_CAP);

fn shrink_cap() {
    set_reverse_word_cap_for_tests(TEST_CAP);
}

const ALL_MODES: [DiamondMode; 4] =
    [DiamondMode::Auto, DiamondMode::Forward, DiamondMode::Reverse, DiamondMode::Csc];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csc_matrix_matches_recursive_above_the_shrunk_cap(
        g in arb_graph(),
        seed in any::<u64>(),
        f_pp in arb_formula_with(ModalIndex::InOut),
        f_mp in arb_formula_with(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_formula_with(|i, _j| ModalIndex::In(i)),
        f_mm in arb_formula_with(|_i, _j| ModalIndex::Any),
    ) {
        shrink_cap();
        let models = all_variants(&g, seed);
        let formulas = [&f_pp, &f_mp, &f_pm, &f_mm];
        for (model, f) in models.iter().zip(formulas) {
            let above_cap = model.predecessor_matrix_words() > TEST_CAP;
            let reference = evaluate_packed_recursive(model, f).unwrap();
            let plan = Plan::compile(model, f).unwrap();
            for mode in ALL_MODES {
                // Sequential and pool-forced execution, bit-identical
                // to the recursive engine and to each other.
                let (mut seq, ss) = plan.execute_with(model, mode);
                let (mut par, ps) = plan.execute_forced_parallel(model, mode);
                prop_assert_eq!(
                    seq.pop().unwrap(), reference.clone(),
                    "variant {:?}, mode {:?}, above_cap {}, formula {}",
                    model.variant(), mode, above_cap, f
                );
                prop_assert_eq!(par.pop().unwrap(), reference.clone());
                prop_assert_eq!(ss.forward_diamonds, ps.forward_diamonds);
                prop_assert_eq!(ss.reverse_diamonds, ps.reverse_diamonds);
                prop_assert_eq!(ss.csc_diamonds, ps.csc_diamonds);
                // Above the cap the dense rows are illegal: no mode
                // may count a dense-reverse diamond.
                if above_cap {
                    prop_assert_eq!(
                        ss.reverse_diamonds, 0,
                        "dense rows above the cap (mode {:?}, formula {})", mode, f
                    );
                }
                match mode {
                    // Reverse never walks forward: everything
                    // reverse-shaped goes dense (below cap, grade 1)
                    // or CSC (everything else).
                    DiamondMode::Reverse => prop_assert_eq!(ss.forward_diamonds, 0),
                    DiamondMode::Csc => {
                        prop_assert_eq!(ss.forward_diamonds + ss.reverse_diamonds, 0);
                    }
                    DiamondMode::Forward => {
                        prop_assert_eq!(ss.reverse_diamonds + ss.csc_diamonds, 0);
                    }
                    DiamondMode::Auto => {}
                }
            }
        }
    }

    #[test]
    fn above_cap_reverse_diamonds_fire_the_csc_path(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        shrink_cap();
        // A guaranteed grade-1 diamond per variant: ⟨α⟩⊤ over the
        // model's first stored relation. On above-cap models the
        // Reverse mode *must* execute it as a CSC gather — the
        // scenario the dense cap used to foreclose.
        for model in all_variants(&g, seed).iter() {
            let Some(index) = model.indices().next() else { continue };
            let f = Formula::diamond(index, &Formula::top());
            let reference = evaluate_packed_recursive(model, &f).unwrap();
            let plan = Plan::compile(model, &f).unwrap();
            let (mut out, stats) = plan.execute_with(model, DiamondMode::Reverse);
            prop_assert_eq!(out.pop().unwrap(), reference, "variant {:?}", model.variant());
            if model.predecessor_matrix_words() > TEST_CAP {
                prop_assert_eq!(stats.csc_diamonds, 1, "above-cap must gather via CSC");
                prop_assert_eq!(stats.reverse_diamonds, 0);
            } else {
                prop_assert_eq!(stats.reverse_diamonds, 1, "below-cap keeps dense rows");
                prop_assert_eq!(stats.csc_diamonds, 0);
            }
        }
    }
}

#[test]
fn explicit_grade_matrix_above_and_below_the_shrunk_cap() {
    shrink_cap();
    // Deterministic {0, 1, k} coverage on one model either side of the
    // shrunk cap: cycle(4) sits at 4 words (dense legal), cycle(9) at
    // 9 words (dense illegal).
    for n in [4usize, 9] {
        let k = Kripke::k_mm(&portnum_graph::generators::cycle(n));
        let above_cap = k.predecessor_matrix_words() > TEST_CAP;
        assert_eq!(above_cap, n > TEST_CAP);
        for grade in [0usize, 1, 2, 3] {
            let f = Formula::diamond_geq(ModalIndex::Any, grade, &Formula::prop(2));
            let reference = evaluate_packed_recursive(&k, &f).unwrap();
            let plan = Plan::compile(&k, &f).unwrap();
            for mode in ALL_MODES {
                let (mut seq, _) = plan.execute_with(&k, mode);
                let (mut par, _) = plan.execute_forced_parallel(&k, mode);
                assert_eq!(seq.pop().unwrap(), reference, "n {n}, grade {grade}, mode {mode:?}");
                assert_eq!(par.pop().unwrap(), reference, "n {n}, grade {grade}, mode {mode:?}");
            }
            // Grade 0 folds to ⊤ at lowering; the others execute one
            // diamond whose Reverse implementation is pinned by the cap
            // (dense for grade 1 below it, CSC otherwise).
            if grade > 0 {
                let (_, stats) = plan.execute_with(&k, DiamondMode::Reverse);
                let dense_legal = grade == 1 && !above_cap;
                assert_eq!(stats.reverse_diamonds, usize::from(dense_legal));
                assert_eq!(stats.csc_diamonds, usize::from(!dense_legal));
                assert_eq!(stats.forward_diamonds, 0);
            }
        }
    }
}

#[test]
fn sharded_graded_counts_merge_across_chunks() {
    shrink_cap();
    // The cross-chunk counting trap: a star's hub has one predecessor
    // row holding all 300 leaves, and entry-quantile sharding splits
    // that single row across every chunk. With grade 200 no chunk can
    // reach the threshold on its own (two chunks see ≤ 150 entries
    // each, more chunks see fewer) — the hub is satisfied only if the
    // per-chunk counts are *merged before* thresholding. An
    // implementation that thresholds per chunk returns ∅ here.
    let leaves = 300usize;
    let grade = 200usize;
    let k = Kripke::k_mm(&portnum_graph::generators::star(leaves));
    assert!(k.predecessor_matrix_words() > TEST_CAP);
    // Leaves have degree 1, so ⟨⟩₂₀₀ q₁ counts the hub's 300 q₁
    // leaf-successors and holds exactly at the hub.
    let f = Formula::diamond_geq(ModalIndex::Any, grade, &Formula::prop(1));
    let reference = evaluate_packed_recursive(&k, &f).unwrap();
    assert_eq!(reference.count_ones(), 1, "only the hub sees {grade}+ leaves");
    let plan = Plan::compile(&k, &f).unwrap();
    for mode in [DiamondMode::Auto, DiamondMode::Reverse, DiamondMode::Csc] {
        let (mut seq, ss) = plan.execute_with(&k, mode);
        let (mut par, ps) = plan.execute_forced_parallel(&k, mode);
        assert_eq!(seq.pop().unwrap(), reference, "mode {mode:?}");
        assert_eq!(par.pop().unwrap(), reference, "mode {mode:?}");
        if mode != DiamondMode::Auto {
            // (Auto is free to prefer the forward sweep on a star.)
            assert_eq!(ss.csc_diamonds, 1, "graded above-cap must gather via CSC");
            assert_eq!(ps.csc_diamonds, 1);
        }
    }
}
