//! Differential property tests for dynamic models: random delta
//! scripts against an independent mirror of the rows and degrees.
//!
//! Each case drives all **four** canonical variants through a random
//! script of edge adds, edge removals, valuation overrides, and crash
//! failures, maintaining a naive `Vec<Vec<u32>>` mirror of the rows
//! plus a degree vector alongside. After the script:
//!
//! * the patched [`Kripke`] must equal `Kripke::from_parts(mirror)` —
//!   the storage layer's CSR patching (and its repaired derived
//!   caches, which `Eq` ignores but the checker reads) agrees with a
//!   from-scratch build;
//! * a [`ModelChecker`] carried across the script via
//!   `detach`/`resume` must answer bit-identically to a fresh checker
//!   on the rebuilt model — repair is indistinguishable from full
//!   recomputation (under `PORTNUM_DELTA=rebuild` the same assertions
//!   pin the drop-everything path; CI runs both knob modes);
//! * plan execution on the patched model must agree between the
//!   sequential and forced-parallel engines (patched rows feed the
//!   chunked executor the same slices);
//! * the quotient path ([`ModelChecker::check_via_quotient`], repaired
//!   incrementally from the pre-delta partition) must stay exact for
//!   ungraded formulas.

mod common;

use common::{all_variants, arb_formula_with as arb_formula, arb_graph, ungrade};
use portnum_logic::plan::{DiamondMode, ModelChecker, Plan};
use portnum_logic::{evaluate_packed, Kripke, ModalIndex, ModelDelta};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Independent replica of one model's mutable state: forward rows per
/// relation (multiplicities preserved, batch order within a row) and
/// the recorded degree valuation.
struct Mirror {
    rows: Vec<Vec<Vec<u32>>>,
    degree: Vec<usize>,
}

impl Mirror {
    fn of(model: &Kripke) -> Mirror {
        let rows = (0..model.relation_count())
            .map(|r| (0..model.len()).map(|v| model.successors_dense(r, v).to_vec()).collect())
            .collect();
        Mirror { rows, degree: model.degrees().to_vec() }
    }

    /// Rebuilds a fresh model from the mirrored state alone.
    fn build(&self, model: &Kripke) -> Kripke {
        let relations: BTreeMap<ModalIndex, Vec<Vec<usize>>> = self
            .rows
            .iter()
            .enumerate()
            .map(|(r, rows)| {
                let rows =
                    rows.iter().map(|row| row.iter().map(|&w| w as usize).collect()).collect();
                (model.relation_index(r), rows)
            })
            .collect();
        Kripke::from_parts(model.variant(), self.degree.clone(), relations)
            .expect("mirrored rows rebuild")
    }
}

/// One random, always-valid step: mutates `mirror` to match and
/// returns the equivalent delta (removals are drawn from the stored
/// rows, so multiplicity validation cannot fire).
fn random_step(rng: &mut StdRng, model: &Kripke, mirror: &mut Mirror) -> ModelDelta {
    let n = model.len() as u32;
    let rels = model.relation_count();
    let mut delta = ModelDelta::new();
    // Degree adjustments mirror `apply_delta`: net out-degree change,
    // saturating at zero, then explicit valuation overrides.
    // Edgeless graphs store no relations, leaving only valuation and
    // crash edits.
    let op = if rels == 0 { rng.random_range(2..4u8) } else { rng.random_range(0..4u8) };
    match op {
        0 => {
            let (r, v, w) = (rng.random_range(0..rels), rng.random_range(0..n), rng.random_range(0..n));
            delta.add_edge(model.relation_index(r), v, w);
            mirror.rows[r][v as usize].push(w);
            mirror.degree[v as usize] += 1;
        }
        1 => {
            // Remove a uniformly random stored edge, if any exist.
            let total: usize = mirror.rows.iter().flatten().map(Vec::len).sum();
            if total == 0 {
                return random_step(rng, model, mirror);
            }
            let mut pick = rng.random_range(0..total);
            'outer: for (r, rows) in mirror.rows.iter_mut().enumerate() {
                for (v, row) in rows.iter_mut().enumerate() {
                    if pick < row.len() {
                        let w = row.remove(pick);
                        delta.remove_edge(model.relation_index(r), v as u32, w);
                        mirror.degree[v] = mirror.degree[v].saturating_sub(1);
                        break 'outer;
                    }
                    pick -= row.len();
                }
            }
        }
        2 => {
            let (v, d) = (rng.random_range(0..n), rng.random_range(0..5usize));
            delta.set_valuation(v, d);
            mirror.degree[v as usize] = d;
        }
        _ => {
            let c = rng.random_range(0..n);
            delta.crash_world(c);
            for rows in &mut mirror.rows {
                let lost = rows[c as usize].len();
                mirror.degree[c as usize] = mirror.degree[c as usize].saturating_sub(lost);
                rows[c as usize].clear();
                for (v, row) in rows.iter_mut().enumerate() {
                    if v == c as usize {
                        continue;
                    }
                    let before = row.len();
                    row.retain(|&w| w != c);
                    mirror.degree[v] = mirror.degree[v].saturating_sub(before - row.len());
                }
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn delta_scripts_match_mirror_and_repair_matches_fresh(
        g in arb_graph(),
        seed in any::<u64>(),
        steps in 1usize..10,
        f_pp in arb_formula(ModalIndex::InOut),
        f_mp in arb_formula(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_formula(|i, _j| ModalIndex::In(i)),
        f_mm in arb_formula(|_i, _j| ModalIndex::Any),
    ) {
        let models = all_variants(&g, seed);
        let formulas = [&f_pp, &f_mp, &f_pm, &f_mm];
        for (model, f) in models.into_iter().zip(formulas) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
            let mut mirror = Mirror::of(&model);

            // Warm a checker on the pristine model, then carry its
            // cache across every step of the script.
            let mut patched = model.clone();
            let mut checker = ModelChecker::new(&patched);
            checker.check(f).unwrap();
            let mut cache = checker.detach();
            for _ in 0..steps {
                let delta = random_step(&mut rng, &model, &mut mirror);
                let touched = patched.apply_delta(&delta).unwrap();
                let checker = ModelChecker::resume(&patched, cache, &touched);
                cache = checker.detach();
            }
            prop_assert_eq!(patched.version(), steps as u64);

            // Storage layer: patched model == from-scratch build of
            // the mirrored rows and degrees.
            let rebuilt = mirror.build(&model);
            prop_assert_eq!(
                &patched, &rebuilt,
                "patched model diverged from mirror on {:?} after {} steps (graph {})",
                patched.variant(), steps, g
            );

            // Checker repair: the carried cache answers bit-identically
            // to full recomputation on the rebuilt model.
            let expected = evaluate_packed(&rebuilt, f).unwrap();
            let mut resumed = ModelChecker::resume(&patched, cache, &[]);
            prop_assert_eq!(
                &*resumed.check(f).unwrap(), &expected,
                "repaired cache diverged on {:?} with {} (graph {})",
                patched.variant(), f, g
            );

            // Engine parity on patched storage: sequential vs forced
            // parallel over the post-delta rows.
            let plan = Plan::compile(&patched, f).unwrap();
            let (seq, _) = plan.execute_with(&patched, DiamondMode::Auto);
            let (par, _) = plan.execute_forced_parallel(&patched, DiamondMode::Auto);
            prop_assert_eq!(&seq, &par);

            // Quotient path: exact for ungraded formulas on the
            // patched model (quotient repaired across the script).
            let uf = ungrade(f);
            let via_quotient = resumed.check_via_quotient(&uf).unwrap();
            prop_assert_eq!(
                via_quotient, evaluate_packed(&rebuilt, &uf).unwrap(),
                "quotient answer diverged on {:?} with {} (graph {})",
                patched.variant(), uf, g
            );
        }
    }

    #[test]
    fn batched_script_equals_sequential_application(
        g in arb_graph(),
        seed in any::<u64>(),
        steps in 1usize..8,
    ) {
        // Merging additive steps into one batch (`ModelDelta::merge`)
        // must agree with applying them one at a time. The script stays
        // inside the equivalence fragment `merge` documents: removals
        // and crashes are validated against pre-batch rows (so none are
        // generated), and valuation overrides never precede edge edits
        // on the same source (adds first, overrides after).
        for model in all_variants(&g, seed) {
            let n = model.len() as u32;
            let rels = model.relation_count();
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(steps as u64));
            let mut adds = Vec::new();
            let mut overrides = Vec::new();
            let mut endpoints: Vec<u32> = Vec::new();
            for _ in 0..steps {
                let mut d = ModelDelta::new();
                if rels > 0 && rng.random_bool(0.7) {
                    let (v, w) = (rng.random_range(0..n), rng.random_range(0..n));
                    d.add_edge(model.relation_index(rng.random_range(0..rels)), v, w);
                    endpoints.push(v);
                    endpoints.push(w);
                    adds.push(d);
                } else {
                    let v = rng.random_range(0..n);
                    d.set_valuation(v, rng.random_range(0..5usize));
                    endpoints.push(v);
                    overrides.push(d);
                }
            }
            let deltas: Vec<ModelDelta> = adds.into_iter().chain(overrides).collect();
            let mut batch = ModelDelta::new();
            for d in &deltas {
                batch.merge(d);
            }
            let mut sequential = model.clone();
            for d in &deltas {
                sequential.apply_delta(d).unwrap();
            }
            let mut batched = model.clone();
            let touched = batched.apply_delta(&batch).unwrap();
            prop_assert_eq!(&batched, &sequential);
            prop_assert_eq!(batched.version(), 1);
            // The batch's touched set covers every edited endpoint.
            for &v in &endpoints {
                prop_assert!(touched.binary_search(&v).is_ok());
            }
        }
    }
}
