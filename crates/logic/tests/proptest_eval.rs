//! Property tests pinning the packed (bitset) model checker to a naive
//! reference evaluator.
//!
//! The reference is the textbook semantics over `Vec<bool>`: no
//! memoisation, no packing, one recursive call per subformula
//! occurrence. The packed evaluator must agree bit-for-bit on random
//! formulas over random models of **all four** canonical variants, and
//! the `evaluate` / `satisfies` / `extension` wrappers must stay
//! consistent views of the packed result.
//!
//! The plan engine gets the same treatment: compiled plans (under every
//! diamond strategy) and the incremental [`ModelChecker`] cache are
//! pinned bit-identical to the recursive pointer-memoised engine
//! [`evaluate_packed_recursive`], including on formulas that are
//! structurally equal but share no `Arc`s — the dedup case pointer
//! identity cannot see, observable through the plan statistics hook.

mod common;

use common::{arb_formula_with as arb_formula, arb_graph, deep_clone};
use portnum_logic::plan::{DiamondMode, ModelChecker, Plan};
use portnum_logic::{
    evaluate, evaluate_packed, evaluate_packed_recursive, extension, satisfies, Formula,
    FormulaKind, Kripke, ModalIndex,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use portnum_graph::PortNumbering;

/// Textbook semantics: unmemoised recursion over `Vec<bool>`.
fn reference_eval(model: &Kripke, formula: &Formula) -> Vec<bool> {
    let n = model.len();
    match formula.kind() {
        FormulaKind::Top => vec![true; n],
        FormulaKind::Bottom => vec![false; n],
        FormulaKind::Prop(d) => (0..n).map(|v| model.degree(v) == *d).collect(),
        FormulaKind::Not(a) => reference_eval(model, a).iter().map(|&b| !b).collect(),
        FormulaKind::And(a, b) => {
            let (x, y) = (reference_eval(model, a), reference_eval(model, b));
            x.iter().zip(&y).map(|(&p, &q)| p && q).collect()
        }
        FormulaKind::Or(a, b) => {
            let (x, y) = (reference_eval(model, a), reference_eval(model, b));
            x.iter().zip(&y).map(|(&p, &q)| p || q).collect()
        }
        FormulaKind::Diamond { index, grade, inner } => {
            let sat = reference_eval(model, inner);
            (0..n)
                .map(|v| {
                    let count = model
                        .successors(v, *index)
                        .iter()
                        .filter(|&&w| sat[w as usize])
                        .count();
                    count >= *grade
                })
                .collect()
        }
        FormulaKind::Var(_) | FormulaKind::Mu { .. } | FormulaKind::Nu { .. } => {
            unreachable!("the shared strategies generate only fixpoint-free formulas")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_matches_reference_on_all_variants(
        g in arb_graph(),
        seed in any::<u64>(),
        f_pp in arb_formula(ModalIndex::InOut),
        f_mp in arb_formula(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_formula(|i, _j| ModalIndex::In(i)),
        f_mm in arb_formula(|_i, _j| ModalIndex::Any),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let cases = [
            (Kripke::k_pp(&g, &p), &f_pp),
            (Kripke::k_mp(&g, &p), &f_mp),
            (Kripke::k_pm(&g, &p), &f_pm),
            (Kripke::k_mm(&g), &f_mm),
        ];
        for (model, f) in &cases {
            let expected = reference_eval(model, f);
            let packed = evaluate_packed(model, f).unwrap();
            prop_assert_eq!(packed.len(), model.len());
            prop_assert_eq!(
                &packed.to_bools(), &expected,
                "variant {:?} on {} with {}", model.variant(), g, f
            );
            // The wrapper views are consistent projections of the packed
            // vector.
            prop_assert_eq!(&evaluate(model, f).unwrap(), &expected);
            let ext = extension(model, f).unwrap();
            prop_assert_eq!(ext.len(), packed.count_ones());
            for (v, &sat) in expected.iter().enumerate() {
                prop_assert_eq!(satisfies(model, v, f).unwrap(), sat);
                prop_assert_eq!(ext.contains(&v), sat);
            }
        }
    }

    #[test]
    fn plans_match_recursive_engine_on_all_variants_and_modes(
        g in arb_graph(),
        seed in any::<u64>(),
        f_pp in arb_formula(ModalIndex::InOut),
        f_mp in arb_formula(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_formula(|i, _j| ModalIndex::In(i)),
        f_mm in arb_formula(|_i, _j| ModalIndex::Any),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let cases = [
            (Kripke::k_pp(&g, &p), &f_pp),
            (Kripke::k_mp(&g, &p), &f_mp),
            (Kripke::k_pm(&g, &p), &f_pm),
            (Kripke::k_mm(&g), &f_mm),
        ];
        for (model, f) in &cases {
            let reference = evaluate_packed_recursive(model, f).unwrap();
            let plan = Plan::compile(model, f).unwrap();
            for mode in
                [DiamondMode::Auto, DiamondMode::Forward, DiamondMode::Reverse, DiamondMode::Csc]
            {
                let (mut out, exec) = plan.execute_with(model, mode);
                prop_assert_eq!(
                    out.pop().unwrap(), reference.clone(),
                    "variant {:?}, mode {:?}, formula {}", model.variant(), mode, f
                );
                prop_assert_eq!(exec.executed, plan.stats().instructions);
            }
        }
    }

    #[test]
    fn forced_parallel_execution_matches_sequential(
        g in arb_graph(),
        seed in any::<u64>(),
        f_pp in arb_formula(ModalIndex::InOut),
        f_mp in arb_formula(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_formula(|i, _j| ModalIndex::In(i)),
        f_mm in arb_formula(|_i, _j| ModalIndex::Any),
    ) {
        // The pool-driven executor (both chunking axes forced on, far
        // below the work gate) must be BIT-identical to the sequential
        // engine — same truth vectors, same per-strategy diamond
        // counts — on all four variants under every diamond mode.
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let cases = [
            (Kripke::k_pp(&g, &p), &f_pp),
            (Kripke::k_mp(&g, &p), &f_mp),
            (Kripke::k_pm(&g, &p), &f_pm),
            (Kripke::k_mm(&g), &f_mm),
        ];
        for (model, f) in &cases {
            let plan = Plan::compile(model, f).unwrap();
            for mode in
                [DiamondMode::Auto, DiamondMode::Forward, DiamondMode::Reverse, DiamondMode::Csc]
            {
                let (seq, seq_stats) = plan.execute_with(model, mode);
                let (par, par_stats) = plan.execute_forced_parallel(model, mode);
                prop_assert_eq!(
                    &seq, &par,
                    "variant {:?}, mode {:?}, formula {}", model.variant(), mode, f
                );
                prop_assert_eq!(seq_stats.executed, par_stats.executed);
                prop_assert_eq!(seq_stats.forward_diamonds, par_stats.forward_diamonds);
                // (No assertion on chunked_ops for the un-forced run:
                // PORTNUM_POOL=force legitimately chunks it too.)
                prop_assert_eq!(seq_stats.reverse_diamonds, par_stats.reverse_diamonds);
                prop_assert_eq!(seq_stats.csc_diamonds, par_stats.csc_diamonds);
            }
        }
    }

    #[test]
    fn unshared_structural_duplicates_dedup_to_one_computation(
        g in arb_graph(),
        f in arb_formula(|_i, _j| ModalIndex::Any),
    ) {
        // A suite of one formula plus a structurally equal copy sharing
        // no Arcs: pointer memoisation would evaluate every node twice,
        // the plan must execute strictly fewer instructions than it
        // lowered pointer-distinct AST nodes.
        let k = Kripke::k_mm(&g);
        let copy = deep_clone(&f);
        prop_assert!(!f.ptr_eq(&copy));
        prop_assert_eq!(&f, &copy);
        let plan = Plan::compile_suite(&k, [&f, &copy]).unwrap();
        let stats = plan.stats();
        prop_assert!(
            stats.instructions < stats.ast_nodes,
            "dedup invisible in stats: {:?} for {}", stats, f
        );
        let truths = plan.execute(&k);
        prop_assert_eq!(&truths[0], &truths[1]);
        prop_assert_eq!(&truths[0], &evaluate_packed_recursive(&k, &f).unwrap());
    }

    #[test]
    fn checker_suite_matches_recursive_engine(
        g in arb_graph(),
        suite in proptest::collection::vec(arb_formula(|_i, _j| ModalIndex::Any), 1..5),
    ) {
        // Many formulas, one model, one shared plan cache: every result
        // must match the per-formula recursive engine, and the cache
        // can only ever compute as many vectors as it has instructions.
        let k = Kripke::k_mm(&g);
        let mut checker = ModelChecker::new(&k);
        for f in &suite {
            let got = checker.check(f).unwrap();
            prop_assert_eq!(&*got, &evaluate_packed_recursive(&k, f).unwrap(), "{}", f);
            // Re-checking an unshared copy is a pure cache hit.
            let again = checker.check(&deep_clone(f)).unwrap();
            prop_assert!(std::rc::Rc::ptr_eq(&got, &again));
        }
        let stats = checker.stats();
        prop_assert!(stats.computed <= stats.instructions);
        prop_assert!(stats.instructions <= stats.ast_nodes);
    }

    #[test]
    fn packed_memoisation_is_sound_under_sharing(
        g in arb_graph(),
        f in arb_formula(|_i, _j| ModalIndex::Any),
    ) {
        // Sharing the same subtree many times must not change truth —
        // the memo returns the identical packed vector each time.
        let k = Kripke::k_mm(&g);
        let shared = f.and(&f).or(&f.and(&f)).not().not();
        prop_assert_eq!(
            evaluate_packed(&k, &shared).unwrap().to_bools(),
            reference_eval(&k, &shared)
        );
    }
}
