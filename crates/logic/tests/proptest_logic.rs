//! Property-based tests for the logic crate: evaluation laws, bisimulation
//! invariance (Proposition 4 on generated models, all four canonical
//! variants), quotient-side checking, and parser totality on displayed
//! formulas.

mod common;

use common::{all_variants, arb_formula_with, arb_graph, arb_mu_formula, ungrade};
use portnum_graph::{Graph, PortNumbering};
use portnum_logic::bisim::{refine, refine_bounded, BisimStyle};
use portnum_logic::plan::ModelChecker;
use portnum_logic::{
    characteristic, evaluate, is_nnf, minimum_base, nnf, parse, simplify, Formula, Kripke,
    ModalIndex,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The single-relation (`K₋,₋`) formula distribution most tests here
/// use: [`arb_formula_with`] over the `Any` index family.
fn arb_formula() -> impl Strategy<Value = Formula> {
    arb_formula_with(|_i, _j| ModalIndex::Any)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn check_via_quotient_matches_direct_checking(
        g in arb_graph(),
        seed in any::<u64>(),
        f_pp in arb_formula_with(ModalIndex::InOut),
        f_mp in arb_formula_with(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_formula_with(|i, _j| ModalIndex::In(i)),
        f_mm in arb_formula_with(|_i, _j| ModalIndex::Any),
    ) {
        // Theorem: ungraded truth factors through the bisimulation
        // quotient. `check_via_quotient` applies it — previously only
        // exercised on fixed fixtures, here on generated models across
        // all four canonical variants.
        let models = all_variants(&g, seed);
        let formulas = [&f_pp, &f_mp, &f_pm, &f_mm];
        for (model, f) in models.iter().zip(formulas) {
            let f = ungrade(f);
            let mut checker = ModelChecker::new(model);
            let via_quotient = checker.check_via_quotient(&f).unwrap();
            let direct = checker.check(&f).unwrap();
            prop_assert_eq!(
                &via_quotient, &*direct,
                "variant {:?} on {} with {}", model.variant(), g, f
            );
        }
    }

    #[test]
    fn plain_bisimilar_worlds_agree_on_ungraded_formulas(
        g in arb_graph(),
        seed in any::<u64>(),
        f_pp in arb_formula_with(ModalIndex::InOut),
        f_mp in arb_formula_with(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_formula_with(|i, _j| ModalIndex::In(i)),
        f_mm in arb_formula_with(|_i, _j| ModalIndex::Any),
    ) {
        // Proposition 4 (Fact 1a), on generated models: plainly
        // bisimilar worlds satisfy the same ML/MML formulas — all four
        // variants, not just K₋,₋ (the graded twin lives below).
        let models = all_variants(&g, seed);
        let formulas = [&f_pp, &f_mp, &f_pm, &f_mm];
        for (model, f) in models.iter().zip(formulas) {
            let f = ungrade(f);
            let classes = refine(model, BisimStyle::Plain);
            let truth = evaluate(model, &f).unwrap();
            for u in 0..model.len() {
                for v in u + 1..model.len() {
                    if classes.bisimilar(u, v) {
                        prop_assert_eq!(
                            truth[u], truth[v],
                            "variant {:?}: {} vs {} on {}", model.variant(), u, v, f
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn boolean_laws_hold_pointwise(g in arb_graph(), f in arb_formula(), h in arb_formula()) {
        let k = Kripke::k_mm(&g);
        let vf = evaluate(&k, &f).unwrap();
        let vh = evaluate(&k, &h).unwrap();
        let vand = evaluate(&k, &f.and(&h)).unwrap();
        let vor = evaluate(&k, &f.or(&h)).unwrap();
        let vneg = evaluate(&k, &f.not()).unwrap();
        for w in 0..k.len() {
            prop_assert_eq!(vand[w], vf[w] && vh[w]);
            prop_assert_eq!(vor[w], vf[w] || vh[w]);
            prop_assert_eq!(vneg[w], !vf[w]);
        }
        // De Morgan through the box dual.
        let box_f = Formula::box_(ModalIndex::Any, &f);
        let vbox = evaluate(&k, &box_f).unwrap();
        let vdia_neg = evaluate(&k, &Formula::diamond(ModalIndex::Any, &f.not())).unwrap();
        for w in 0..k.len() {
            prop_assert_eq!(vbox[w], !vdia_neg[w]);
        }
    }

    #[test]
    fn grades_are_antitone(g in arb_graph(), f in arb_formula()) {
        let k = Kripke::k_mm(&g);
        let mut prev = evaluate(&k, &Formula::diamond_geq(ModalIndex::Any, 0, &f)).unwrap();
        prop_assert!(prev.iter().all(|&b| b), "grade 0 is trivially true");
        for grade in 1..=4 {
            let cur = evaluate(&k, &Formula::diamond_geq(ModalIndex::Any, grade, &f)).unwrap();
            for w in 0..k.len() {
                prop_assert!(!cur[w] || prev[w], "⟨⟩≥{grade} implies ⟨⟩≥{}", grade - 1);
            }
            prev = cur;
        }
    }

    #[test]
    fn graded_bisimilar_worlds_agree(g in arb_graph(), f in arb_formula()) {
        let k = Kripke::k_mm(&g);
        let classes = refine(&k, BisimStyle::Graded);
        let truth = evaluate(&k, &f).unwrap();
        for u in 0..k.len() {
            for v in 0..k.len() {
                if classes.bisimilar(u, v) {
                    prop_assert_eq!(truth[u], truth[v], "{} vs {} on {}", u, v, f);
                }
            }
        }
    }

    #[test]
    fn bounded_refinement_respects_modal_depth(g in arb_graph(), f in arb_formula()) {
        let k = Kripke::k_mm(&g);
        let depth = f.modal_depth();
        let classes = refine_bounded(&k, BisimStyle::Graded, depth);
        let truth = evaluate(&k, &f).unwrap();
        for u in 0..k.len() {
            for v in 0..k.len() {
                if classes.equivalent_at(depth, u, v) {
                    prop_assert_eq!(truth[u], truth[v],
                        "depth-{} equivalent worlds {} and {} disagree on {}", depth, u, v, f);
                }
            }
        }
    }

    #[test]
    fn characteristic_formulas_are_exact(g in arb_graph(), depth in 0usize..=3) {
        let k = Kripke::k_mm(&g);
        for style in [BisimStyle::Plain, BisimStyle::Graded] {
            let chars = characteristic(&k, style, depth);
            for v in 0..k.len() {
                let truth = evaluate(&k, chars.formula_for(v, depth)).unwrap();
                for (w, &truth_w) in truth.iter().enumerate() {
                    prop_assert_eq!(
                        truth_w,
                        chars.classes().equivalent_at(depth, v, w),
                        "style {:?}, depth {}, worlds {} {}", style, depth, v, w
                    );
                }
            }
        }
    }

    #[test]
    fn quotient_preserves_ungraded_formulas(g in arb_graph(), f in arb_formula()) {
        // Strip grades so the formula lands in ML (set-based quotients do
        // not preserve counting).
        let f = ungrade(&f);
        let k = Kripke::k_mm(&g);
        let (q, map) = minimum_base(&k);
        let orig = evaluate(&k, &f).unwrap();
        let quot = evaluate(&q, &f).unwrap();
        for v in 0..k.len() {
            prop_assert_eq!(orig[v], quot[map[v]], "{} at {}", f, v);
        }
    }

    #[test]
    fn quotient_block_count_matches_refinement(g in arb_graph()) {
        let k = Kripke::k_mm(&g);
        let classes = refine(&k, BisimStyle::Plain);
        let (q, map) = minimum_base(&k);
        prop_assert_eq!(q.len(), classes.class_count(classes.depth()));
        for u in 0..k.len() {
            for v in 0..k.len() {
                prop_assert_eq!(map[u] == map[v], classes.bisimilar(u, v));
            }
        }
    }

    #[test]
    fn display_parse_identity(f in arb_formula()) {
        prop_assert_eq!(parse(&f.to_string()).unwrap(), f);
    }

    #[test]
    fn display_parse_identity_with_binders(f in arb_mu_formula(|_i, _j| ModalIndex::Any)) {
        // µ/ν binders survive the string round-trip the serve protocol
        // ships formulas through, structurally intact.
        prop_assert_eq!(parse(&f.to_string()).unwrap(), f);
    }

    #[test]
    fn binder_transforms_preserve_extension(
        g in arb_graph(),
        f in arb_mu_formula(|_i, _j| ModalIndex::Any),
    ) {
        let k = Kripke::k_mm(&g);
        let s = simplify(&f);
        prop_assert!(s.size() <= f.size(), "{} grew to {}", f, s);
        prop_assert_eq!(evaluate(&k, &f).unwrap(), evaluate(&k, &s).unwrap(), "{} vs {}", f, s);
        let n = nnf(&f);
        prop_assert!(is_nnf(&n), "nnf({}) = {} not normal", f, n);
        prop_assert_eq!(evaluate(&k, &f).unwrap(), evaluate(&k, &n).unwrap(), "{} vs {}", f, n);
    }

    #[test]
    fn simplify_preserves_extension_and_never_grows(g in arb_graph(), f in arb_formula()) {
        let k = Kripke::k_mm(&g);
        let s = simplify(&f);
        prop_assert!(s.size() <= f.size(), "{} grew to {}", f, s);
        prop_assert!(s.modal_depth() <= f.modal_depth());
        prop_assert_eq!(evaluate(&k, &f).unwrap(), evaluate(&k, &s).unwrap(), "{} vs {}", f, s);
        // Idempotent.
        prop_assert_eq!(simplify(&s.clone()), s);
    }

    #[test]
    fn nnf_preserves_extension_and_normalises(g in arb_graph(), f in arb_formula()) {
        let k = Kripke::k_mm(&g);
        let n = nnf(&f);
        prop_assert!(is_nnf(&n), "nnf({}) = {} not normal", f, n);
        prop_assert_eq!(n.modal_depth(), f.modal_depth());
        prop_assert_eq!(evaluate(&k, &f).unwrap(), evaluate(&k, &n).unwrap(), "{} vs {}", f, n);
        prop_assert_eq!(nnf(&n.clone()), n);
    }

    #[test]
    fn disjoint_union_preserves_truth(g in arb_graph(), h in arb_graph(), f in arb_formula()) {
        let ka = Kripke::k_mm(&g);
        let kb = Kripke::k_mm(&h);
        let ku = ka.disjoint_union(&kb);
        let va = evaluate(&ka, &f).unwrap();
        let vb = evaluate(&kb, &f).unwrap();
        let vu = evaluate(&ku, &f).unwrap();
        for w in 0..ka.len() {
            prop_assert_eq!(vu[w], va[w]);
        }
        for w in 0..kb.len() {
            prop_assert_eq!(vu[ka.len() + w], vb[w]);
        }
    }
}

#[test]
fn malformed_binders_answer_typed_errors() {
    // Typed `ParseError` values, never panics — the contract the serve
    // protocol's `BadFormula` frames rest on.
    for s in [
        "X",                      // unbound at top level
        "q1 | Y",                 // unbound under a connective
        "mu X . q1 | Y",          // unbound inside a binder body
        "mu X . mu X . X",        // shadowed binder
        "nu Y . (q1 & mu Y . Y)", // shadowed across binder kinds
        "mu X . !X",              // negative occurrence (non-monotone)
        "mu X",                   // missing dot and body
        "mu . X",                 // missing variable
    ] {
        let err = parse(s).expect_err(&format!("{s:?} must not parse"));
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn bisimulation_is_invariant_under_world_relabelling() {
    // Reversing node ids of a graph must not change the partition sizes.
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..10 {
        let g = portnum_graph::generators::gnp(8, 0.3, &mut rng);
        let n = g.len();
        let reversed_edges: Vec<(usize, usize)> =
            g.edges().map(|(u, v)| (n - 1 - u, n - 1 - v)).collect();
        let h = Graph::from_edges(n, &reversed_edges).unwrap();
        let ck = refine(&Kripke::k_mm(&g), BisimStyle::Plain);
        let ch = refine(&Kripke::k_mm(&h), BisimStyle::Plain);
        assert_eq!(ck.class_count(ck.depth()), ch.class_count(ch.depth()));
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    ck.bisimilar(u, v),
                    ch.bisimilar(n - 1 - u, n - 1 - v),
                    "relabelling must preserve bisimilarity"
                );
            }
        }
    }
}

#[test]
fn kripke_from_random_port_numberings_is_total_function_per_in_port() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..10 {
        let g = portnum_graph::generators::gnp(8, 0.4, &mut rng);
        let p = PortNumbering::random(&g, &mut rng);
        let k = Kripke::k_pm(&g, &p);
        for v in g.nodes() {
            for i in 0..g.degree(v) {
                assert_eq!(k.successors(v, ModalIndex::In(i)).len(), 1);
            }
            assert!(k.successors(v, ModalIndex::In(g.degree(v))).is_empty());
        }
    }
}
