//! Differential property suite for modal µ-fragment fixpoints.
//!
//! The compiled iterate-until-stable plans (frontier iteration, dense
//! fallback, all three diamond dispatch modes, sequential and forced
//! pool execution) are pinned **bit-identical** to the naive Kleene
//! reference in [`evaluate_packed_recursive`] — whole-body
//! re-evaluation per iteration, no frontier, no plan. The strategies
//! generate *closed* formulas only: every `Var` sits under a binder
//! introducing it, and negation is applied only to closed subformulas,
//! so positivity holds by construction and the checked `mu`/`nu`
//! constructors never fail.
//!
//! A deterministic pin at the bottom asserts the frontier accounting on
//! path models: after the first dense iteration the wave front is O(1)
//! worlds per step, so total touched worlds stay o(n · iterations).

mod common;

use common::{arb_graph, arb_mu_formula};
use portnum_logic::plan::{
    fixpoint_override, DiamondMode, FixpointOverride, ModelChecker, Plan,
};
use portnum_logic::{evaluate_packed_recursive, Formula, Kripke, ModalIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use portnum_graph::{generators, PortNumbering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fixpoint_plans_match_kleene_on_all_variants_and_modes(
        g in arb_graph(),
        seed in any::<u64>(),
        f_pp in arb_mu_formula(ModalIndex::InOut),
        f_mp in arb_mu_formula(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_mu_formula(|i, _j| ModalIndex::In(i)),
        f_mm in arb_mu_formula(|_i, _j| ModalIndex::Any),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let cases = [
            (Kripke::k_pp(&g, &p), &f_pp),
            (Kripke::k_mp(&g, &p), &f_mp),
            (Kripke::k_pm(&g, &p), &f_pm),
            (Kripke::k_mm(&g), &f_mm),
        ];
        for (model, f) in &cases {
            let reference = evaluate_packed_recursive(model, f).unwrap();
            let plan = Plan::compile(model, f).unwrap();
            for mode in
                [DiamondMode::Auto, DiamondMode::Forward, DiamondMode::Reverse, DiamondMode::Csc]
            {
                let (mut seq, seq_stats) = plan.execute_with(model, mode);
                prop_assert_eq!(
                    seq.pop().unwrap(), reference.clone(),
                    "variant {:?}, mode {:?}, formula {}", model.variant(), mode, f
                );
                // Forced pool execution: bit-identical vectors AND
                // identical iteration counts (fixpoints always run on
                // the sequential instruction path; only their body ops
                // chunk).
                let (mut par, par_stats) = plan.execute_forced_parallel(model, mode);
                prop_assert_eq!(
                    par.pop().unwrap(), reference.clone(),
                    "forced-parallel diverged: variant {:?}, mode {:?}, formula {}",
                    model.variant(), mode, f
                );
                prop_assert_eq!(seq_stats.fixpoint_iters, par_stats.fixpoint_iters);
                prop_assert_eq!(seq_stats.fixpoints, par_stats.fixpoints);
            }
        }
    }

    #[test]
    fn checker_fixpoints_match_kleene_and_cache_cleanly(
        g in arb_graph(),
        f in arb_mu_formula(|_i, _j| ModalIndex::Any),
    ) {
        let k = Kripke::k_mm(&g);
        let reference = evaluate_packed_recursive(&k, &f).unwrap();
        let mut checker = ModelChecker::new(&k);
        let got = checker.check(&f).unwrap();
        prop_assert_eq!(&*got, &reference, "checker diverged on {}", f);
        // Cache hit: same Rc, no recomputation.
        let computed = checker.stats().computed;
        let again = checker.check(&f).unwrap();
        prop_assert!(std::rc::Rc::ptr_eq(&got, &again));
        prop_assert_eq!(checker.stats().computed, computed);
    }
}

/// The o(n · iters) pin: single-goal reachability on a path forces
/// Θ(n) iterations, yet the frontier engine touches O(1) worlds per
/// iteration after the first dense pass — so total frontier-touched
/// worlds stay far below `n × iters`, the dense engine's bill.
#[test]
fn frontier_iteration_touches_o_of_n_iters_worlds_on_paths() {
    if fixpoint_override() != FixpointOverride::Frontier {
        return; // the dense baseline leg intentionally re-sweeps everything
    }
    for n in [128usize, 512, 1024] {
        let k = Kripke::k_mm(&generators::path(n));
        let f = Formula::mu(
            "X",
            &Formula::prop(1).or(&Formula::diamond(ModalIndex::Any, &Formula::var("X"))),
        )
        .unwrap();
        let plan = Plan::compile(&k, &f).unwrap();
        let (out, stats) = plan.execute_with(&k, DiamondMode::Auto);
        assert_eq!(out[0], evaluate_packed_recursive(&k, &f).unwrap(), "n = {n}");
        assert!(stats.fixpoint_iters > n / 4, "paths force long chains: {stats:?}");
        assert_eq!(stats.fixpoint_dense_passes, 1, "only the first iteration is dense");
        let dense_bill = n * stats.fixpoint_iters;
        assert!(
            stats.fixpoint_frontier_worlds * 8 < dense_bill,
            "n = {n}: frontier touched {} worlds, dense would touch {dense_bill}",
            stats.fixpoint_frontier_worlds,
        );
    }
}
