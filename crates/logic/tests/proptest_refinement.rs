//! Property tests pinning the interned-signature refinement engine to a
//! naive reference implementation.
//!
//! The reference mirrors the textbook algorithm (and the pre-CSR
//! implementation): per round, per world, build an explicit nested
//! signature `(prev block, per modality the sorted successor blocks with
//! counts)` keyed into a `HashMap`. It is O(n²)-ish and allocation-heavy
//! but obviously correct; the engine must produce the *same partitions at
//! every depth* for both styles on all four canonical model variants.

mod common;

use common::arb_graph;
use portnum_graph::{Graph, PortNumbering};
use portnum_logic::bisim::{
    refine, refine_bounded, refine_fixpoint, refine_fixpoint_stats, refine_forced_parallel,
    refine_with, refine_worklist_forced_parallel, BisimStyle, RefineEngine,
};
use portnum_logic::{Kripke, ModalIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Naive reference refinement: all levels, nested-`Vec` signatures.
fn reference_refine(model: &Kripke, style: BisimStyle, rounds: usize) -> Vec<Vec<usize>> {
    let n = model.len();
    let indices: Vec<ModalIndex> = model.indices().collect();

    let mut ids: HashMap<usize, usize> = HashMap::new();
    let level0: Vec<usize> = (0..n)
        .map(|v| {
            let fresh = ids.len();
            *ids.entry(model.degree(v)).or_insert(fresh)
        })
        .collect();
    let mut levels = vec![level0];

    for _ in 0..rounds {
        let prev = levels.last().expect("depth 0");
        type Sig = (usize, Vec<Vec<(usize, usize)>>);
        let mut sigs: HashMap<Sig, usize> = HashMap::new();
        let mut next = vec![0usize; n];
        for v in 0..n {
            let mut per_index = Vec::with_capacity(indices.len());
            for &index in &indices {
                let mut blocks: Vec<usize> =
                    model.successors(v, index).iter().map(|&w| prev[w as usize]).collect();
                blocks.sort_unstable();
                let mut counted: Vec<(usize, usize)> = Vec::new();
                for b in blocks {
                    match counted.last_mut() {
                        Some((last, c)) if *last == b => *c += 1,
                        _ => counted.push((b, 1)),
                    }
                }
                if style == BisimStyle::Plain {
                    for entry in &mut counted {
                        entry.1 = 1;
                    }
                }
                per_index.push(counted);
            }
            let fresh = sigs.len();
            next[v] = *sigs.entry((prev[v], per_index)).or_insert(fresh);
        }
        levels.push(next);
    }
    levels
}

/// Renumbers a partition to dense first-seen ids so two partitions are
/// equal as vectors iff they induce the same blocks.
fn canonical(partition: &[usize]) -> Vec<usize> {
    let mut ids: HashMap<usize, usize> = HashMap::new();
    partition
        .iter()
        .map(|&b| {
            let fresh = ids.len();
            *ids.entry(b).or_insert(fresh)
        })
        .collect()
}

fn all_variants(g: &Graph, p: &PortNumbering) -> [Kripke; 4] {
    [Kripke::k_pp(g, p), Kripke::k_mp(g, p), Kripke::k_pm(g, p), Kripke::k_mm(g)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interned_refinement_matches_reference(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        for model in all_variants(&g, &p) {
            for style in [BisimStyle::Plain, BisimStyle::Graded] {
                let fast = refine(&model, style);
                let slow = reference_refine(&model, style, fast.depth());
                prop_assert!(fast.is_stable());
                for (t, slow_level) in slow.iter().enumerate() {
                    prop_assert_eq!(
                        canonical(fast.level(t)),
                        canonical(slow_level),
                        "variant {:?}, style {:?}, depth {}/{} on {}",
                        model.variant(), style, t, fast.depth(), g
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_refinement_matches_reference_prefix(
        g in arb_graph(),
        seed in any::<u64>(),
        depth in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        for model in all_variants(&g, &p) {
            for style in [BisimStyle::Plain, BisimStyle::Graded] {
                let fast = refine_bounded(&model, style, depth);
                let slow = reference_refine(&model, style, depth);
                prop_assert!(fast.depth() <= depth);
                for t in 0..=depth {
                    prop_assert_eq!(
                        canonical(fast.level(t)),
                        canonical(&slow[t.min(slow.len() - 1)]),
                        "variant {:?}, style {:?}, depth {} (bound {})",
                        model.variant(), style, t, depth
                    );
                }
            }
        }
    }

    #[test]
    fn forced_parallel_refinement_matches_sequential(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        // The chunked encode + in-order intern path must produce levels
        // BIT-identical (not just partition-equal) to the sequential
        // engine, far below the auto-parallel threshold.
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        for model in all_variants(&g, &p) {
            for style in [BisimStyle::Plain, BisimStyle::Graded] {
                let seq = refine(&model, style);
                let par = refine_forced_parallel(&model, style);
                prop_assert!(par.is_stable());
                prop_assert_eq!(seq.depth(), par.depth());
                for t in 0..=seq.depth() {
                    prop_assert_eq!(
                        seq.level(t), par.level(t),
                        "variant {:?}, style {:?}, level {}", model.variant(), style, t
                    );
                }
            }
        }
    }

    #[test]
    fn worklist_engine_matches_rounds_engine(g in arb_graph(), seed in any::<u64>()) {
        // The incremental worklist engine and the full-round reference
        // must agree BIT-identically (canonical ids, not just
        // partition-equal) at every level, on every variant and style.
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        for model in all_variants(&g, &p) {
            for style in [BisimStyle::Plain, BisimStyle::Graded] {
                let wl = refine_with(&model, style, RefineEngine::Worklist);
                let rd = refine_with(&model, style, RefineEngine::Rounds);
                prop_assert_eq!(wl.depth(), rd.depth(), "variant {:?}", model.variant());
                prop_assert_eq!(wl.is_stable(), rd.is_stable());
                for t in 0..=wl.depth() {
                    prop_assert_eq!(
                        wl.level(t), rd.level(t),
                        "variant {:?}, style {:?}, level {}", model.variant(), style, t
                    );
                }
                // The stats-reporting fixpoint path agrees too, and its
                // touched counter can never beat one full sweep yet
                // never exceeds the full-round engine's bill.
                let (lean, stats) = refine_fixpoint_stats(&model, style);
                prop_assert_eq!(lean.final_level(), wl.final_level());
                prop_assert_eq!(stats.rounds, wl.depth());
                prop_assert!(stats.encoded >= model.len().min(1));
                prop_assert!(stats.encoded <= model.len() * stats.rounds.max(1));
            }
        }
    }

    #[test]
    fn forced_parallel_worklist_matches_sequential_worklist(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        for model in all_variants(&g, &p) {
            for style in [BisimStyle::Plain, BisimStyle::Graded] {
                let seq = refine_with(&model, style, RefineEngine::Worklist);
                let par = refine_worklist_forced_parallel(&model, style);
                prop_assert_eq!(seq.depth(), par.depth());
                for t in 0..=seq.depth() {
                    prop_assert_eq!(
                        seq.level(t), par.level(t),
                        "variant {:?}, style {:?}, level {}", model.variant(), style, t
                    );
                }
            }
        }
    }

    #[test]
    fn unbounded_refine_is_stable_and_matches_bounded_n(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let n = g.len();
        for model in all_variants(&g, &p) {
            for style in [BisimStyle::Plain, BisimStyle::Graded] {
                let free = refine(&model, style);
                let capped = refine_bounded(&model, style, n);
                prop_assert!(free.is_stable(), "refine must reach the fixpoint");
                prop_assert!(capped.is_stable(), "n rounds always pass the fixpoint");
                prop_assert_eq!(free.depth(), capped.depth());
                prop_assert_eq!(free.final_level(), capped.final_level());
                // The O(n)-memory fixpoint path agrees with the full run.
                let lean = refine_fixpoint(&model, style);
                prop_assert!(lean.is_stable());
                prop_assert_eq!(lean.final_level(), free.final_level());
                prop_assert_eq!(lean.depth(), free.depth());
            }
        }
    }
}
