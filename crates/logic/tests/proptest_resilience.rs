//! Property tests for the resilience layer: cancelling a check at a
//! random failpoint mid-run must leave the [`ModelChecker`] caches
//! consistent — an immediate retry on the *same* checker is
//! bit-identical to a fresh checker on all four canonical variants.
//!
//! The failpoint registry is process-global, so this binary holds
//! exactly one `#[test]` (proptest cases run sequentially within it).

mod common;

use common::{arb_formula_with as arb_formula, arb_graph};
use portnum_graph::resilience::{CancelToken, ExecControl};
use portnum_logic::plan::ModelChecker;
use portnum_logic::{Kripke, LogicError, ModalIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use portnum_graph::PortNumbering;

/// Sites on the `ModelChecker::check_controlled` path. Whether a given
/// (model, formula) pair actually reaches a site depends on the query —
/// a miss simply means the cancel never fires and the check completes,
/// which the property handles (both arms must stay cache-consistent).
const SITES: &[&str] = &["checker-instr", "csc-build", "dense-build", "pool-dispatch", "pool-chunk"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cancel_at_random_failpoint_leaves_checker_caches_consistent(
        g in arb_graph(),
        seed in any::<u64>(),
        site_ix in 0usize..5,
        f_pp in arb_formula(ModalIndex::InOut),
        f_mp in arb_formula(|_i, j| ModalIndex::Out(j)),
        f_pm in arb_formula(|i, _j| ModalIndex::In(i)),
        f_mm in arb_formula(|_i, _j| ModalIndex::Any),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let cases = [
            (Kripke::k_pp(&g, &p), &f_pp),
            (Kripke::k_mp(&g, &p), &f_mp),
            (Kripke::k_pm(&g, &p), &f_pm),
            (Kripke::k_mm(&g), &f_mm),
        ];
        for (model, f) in &cases {
            let fresh = ModelChecker::new(model)
                .check(f)
                .expect("uninjected check succeeds")
                .words()
                .to_vec();

            let mut checker = ModelChecker::new(model);
            let token = CancelToken::new();
            let t = token.clone();
            fail::cfg_callback(SITES[site_ix], move || t.cancel());
            let injected = checker.check_controlled(f, &ExecControl::with_cancel(token));
            fail::teardown();

            match injected {
                // The cancel landed: whole-or-nothing means nothing was
                // committed by the interrupted call...
                Err(LogicError::Interrupted(_)) => {}
                // ...or the site was never reached and the run finished
                // (must already be correct).
                Ok(truth) => prop_assert_eq!(truth.words(), fresh.as_slice()),
                Err(other) => prop_assert!(false, "unexpected error: {}", other),
            }

            // Either way the caches are consistent: an immediate retry
            // on the same checker matches a fresh checker bit for bit.
            let retry = checker.check(f).expect("retry after cancel succeeds");
            prop_assert_eq!(retry.words(), fresh.as_slice());
        }
    }
}
