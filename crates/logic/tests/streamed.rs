//! The streaming model-construction differentials.
//!
//! Two claims are pinned here:
//!
//! 1. **Streamed ≡ Vec-built, all four variants.** A model assembled
//!    by [`KripkeBuilder`]'s two-pass streaming CSR construction is
//!    `Eq` (exact CSR arrays, not just logically equivalent) to the
//!    same model built by the canonical `Vec`-collecting constructors
//!    `k_pp`/`k_mp`/`k_pm`/`k_mm`. The streams are derived from the
//!    same `Graph` + `PortNumbering` through the public port API, in
//!    the constructors' visit order, so any divergence is the
//!    builder's fault, not the test's.
//!
//! 2. **Big-model smoke.** A streamed path model at the million-world
//!    scale (capped to 2¹⁷ worlds in debug builds so the suite stays
//!    fast) evaluates bit-identically under the forced-sequential,
//!    forced-parallel, and Auto executors — the at-scale version of
//!    the proptest matrices, run under every CI knob combination like
//!    the rest of this suite.

mod common;

use common::arb_graph;
use portnum_graph::{generators, Graph, Port, PortNumbering};
use portnum_logic::plan::{DiamondMode, Plan};
use portnum_logic::{Formula, Kripke, KripkeBuilder, ModalIndex, ModelVariant};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rebuilds the port-projected variant of `(g, p)` through the
/// streaming builder: one replayable stream per modality index, each
/// walking ports in the constructors' `(world, port)` order and
/// filtering to its index.
fn streamed_variant(
    g: &Graph,
    p: &PortNumbering,
    variant: ModelVariant,
    proj: fn(usize, usize) -> ModalIndex,
) -> Kripke {
    let mut indices = std::collections::BTreeSet::new();
    for v in g.nodes() {
        for i in 0..g.degree(v) {
            let src = p.backward(Port::new(v, i));
            indices.insert(proj(i, src.index));
        }
    }
    let mut b = KripkeBuilder::new(variant, g.len());
    for &index in &indices {
        b = b.relation(index, move || {
            g.nodes().flat_map(move |v| {
                (0..g.degree(v)).filter_map(move |i| {
                    let src = p.backward(Port::new(v, i));
                    (proj(i, src.index) == index).then_some((v as u32, src.node as u32))
                })
            })
        });
    }
    b.build().expect("port pairs stay in range")
}

/// The `K₋,₋` model streamed straight off the adjacency lists (ports
/// play no role in that variant, exactly as in [`Kripke::k_mm`]).
fn streamed_mm(g: &Graph) -> Kripke {
    KripkeBuilder::new(ModelVariant::MinusMinus, g.len())
        .relation(ModalIndex::Any, || {
            g.nodes().flat_map(|v| g.neighbors(v).iter().map(move |&w| (v as u32, w as u32)))
        })
        .build()
        .expect("adjacency pairs stay in range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streamed_models_are_eq_to_vec_built_models(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        prop_assert_eq!(
            streamed_variant(&g, &p, ModelVariant::PlusPlus, ModalIndex::InOut),
            Kripke::k_pp(&g, &p)
        );
        prop_assert_eq!(
            streamed_variant(&g, &p, ModelVariant::MinusPlus, |_i, j| ModalIndex::Out(j)),
            Kripke::k_mp(&g, &p)
        );
        prop_assert_eq!(
            streamed_variant(&g, &p, ModelVariant::PlusMinus, |i, _j| ModalIndex::In(i)),
            Kripke::k_pm(&g, &p)
        );
        prop_assert_eq!(streamed_mm(&g), Kripke::k_mm(&g));
    }
}

/// Worlds of the big-model smoke: a full million in release (the
/// scale the streaming/blocked/sharded paths exist for), capped to
/// 2¹⁷ in debug builds where a million-world sweep would dominate the
/// suite's runtime.
const SMOKE_WORLDS: usize = if cfg!(debug_assertions) { 1 << 17 } else { 1 << 20 };

#[test]
fn million_world_streamed_path_evaluates_identically_across_executors() {
    let n = SMOKE_WORLDS;
    let k = KripkeBuilder::new(ModelVariant::MinusMinus, n)
        .relation(ModalIndex::Any, move || generators::path_edges(n))
        .build()
        .expect("path stream stays in range");
    assert_eq!(k.len(), n);
    // One grade-1 and one graded diamond plus a Prop mix: covers the
    // blocked forward sweep, the chunked Prop fill, and the
    // entry-sharded CSC gather in a single small suite.
    let f1 = Formula::diamond(ModalIndex::Any, &Formula::prop(1)).or(&Formula::prop(2));
    let f2 = Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(2));
    let plan = Plan::compile_suite(&k, &[f1, f2.clone()]).expect("suite compiles");
    let (seq, ss) = plan.execute_forced_sequential(&k, DiamondMode::Auto);
    let (par, ps) = plan.execute_forced_parallel(&k, DiamondMode::Auto);
    let (auto, _) = plan.execute_with(&k, DiamondMode::Auto);
    assert_eq!(seq, par, "forced-parallel must be bit-identical at scale");
    assert_eq!(seq, auto, "Auto must be bit-identical at scale");
    assert_eq!(ss.executed, ps.executed);
    assert!(
        ps.chunked_ops + ps.level_parallel_ops > 0,
        "forced run must exercise the pool: {ps:?}"
    );
    assert_eq!(ss.dispatch_cost_ns, 0, "sequential runs report no dispatch cost");
    // A single-formula plan has one op per level, so the forced run
    // must take the *chunked* route (blocked forward sweeps, sharded
    // CSC gathers) rather than running whole ops level-parallel.
    let solo = Plan::compile(&k, &f2).expect("formula compiles");
    let (solo_seq, _) = solo.execute_forced_sequential(&k, DiamondMode::Auto);
    let (solo_par, sp) = solo.execute_forced_parallel(&k, DiamondMode::Auto);
    assert_eq!(solo_seq, solo_par, "chunked run must be bit-identical at scale");
    assert!(sp.chunked_ops > 0, "single-op levels must chunk: {sp:?}");
    assert_eq!(solo_seq[0], seq[1], "the two plans agree on the shared formula");
    // Cheap sanity anchors that the answers are not vacuously equal:
    // q₂ ∪ ⟨⟩q₁ holds exactly at the n − 2 interior (degree-2) worlds,
    // and ⟨⟩₂q₂ needs two degree-2 neighbours, which the worlds at
    // distance ≤ 1 from an endpoint lack.
    assert_eq!(seq[0].count_ones(), n - 2, "q2 ∪ ⟨⟩q1 covers exactly the interior");
    assert_eq!(seq[1].count_ones(), n - 4, "⟨⟩₂q₂ holds away from both endpoints");
}
