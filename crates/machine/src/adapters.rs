//! Zero-cost embeddings of the weaker algorithm classes into
//! [`VectorAlgorithm`], the interface executed by the
//! [`Simulator`](crate::Simulator).
//!
//! The embeddings implement the *trivial* inclusions of Figure 5a:
//! an algorithm that only looks at the set of incoming messages is in
//! particular a vector algorithm (it just ignores the order), and a
//! broadcast algorithm is a vector algorithm whose `μ` ignores the port.
//! The non-trivial *converse* simulations (Theorems 4, 8, 9) live in the
//! `portnum` core crate.

use crate::algorithm::{
    BroadcastAlgorithm, MbAlgorithm, MultisetAlgorithm, ObliviousAlgorithm, SbAlgorithm,
    SetAlgorithm, Status, VectorAlgorithm,
};
use crate::multiset::Multiset;
use crate::payload::Payload;
use std::collections::BTreeSet;

macro_rules! delegate_inner {
    ($name:ident) => {
        impl<A> $name<A> {
            /// Wraps an algorithm.
            pub fn new(inner: A) -> Self {
                $name(inner)
            }

            /// Borrows the wrapped algorithm.
            pub fn inner(&self) -> &A {
                &self.0
            }

            /// Unwraps the algorithm.
            pub fn into_inner(self) -> A {
                self.0
            }
        }
    };
}

/// Runs a [`MultisetAlgorithm`] as a [`VectorAlgorithm`] by forgetting the
/// order of incoming messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultisetAsVector<A>(pub A);
delegate_inner!(MultisetAsVector);

impl<A: MultisetAlgorithm> VectorAlgorithm for MultisetAsVector<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init(degree)
    }

    fn message(&self, state: &Self::State, port: usize) -> Self::Msg {
        self.0.message(state, port)
    }

    fn message_into(&self, state: &Self::State, port: usize, slot: &mut Payload<Self::Msg>) {
        self.0.message_into(state, port, slot)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output> {
        let multiset: Multiset<Payload<Self::Msg>> = received.iter().cloned().collect();
        self.0.step(state, &multiset)
    }
}

/// Runs a [`SetAlgorithm`] as a [`VectorAlgorithm`] by forgetting order and
/// multiplicities of incoming messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SetAsVector<A>(pub A);
delegate_inner!(SetAsVector);

impl<A: SetAlgorithm> VectorAlgorithm for SetAsVector<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init(degree)
    }

    fn message(&self, state: &Self::State, port: usize) -> Self::Msg {
        self.0.message(state, port)
    }

    fn message_into(&self, state: &Self::State, port: usize, slot: &mut Payload<Self::Msg>) {
        self.0.message_into(state, port, slot)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output> {
        let set: BTreeSet<Payload<Self::Msg>> = received.iter().cloned().collect();
        self.0.step(state, &set)
    }
}

/// Runs a [`SetAlgorithm`] as a [`MultisetAlgorithm`] (forget
/// multiplicities). Used to compose the simulation theorems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SetAsMultiset<A>(pub A);
delegate_inner!(SetAsMultiset);

impl<A: SetAlgorithm> MultisetAlgorithm for SetAsMultiset<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init(degree)
    }

    fn message(&self, state: &Self::State, port: usize) -> Self::Msg {
        self.0.message(state, port)
    }

    fn message_into(&self, state: &Self::State, port: usize, slot: &mut Payload<Self::Msg>) {
        self.0.message_into(state, port, slot)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &Multiset<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output> {
        self.0.step(state, &received.to_set())
    }
}

/// Runs a [`BroadcastAlgorithm`] as a [`VectorAlgorithm`] whose `μ` ignores
/// the out-port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BroadcastAsVector<A>(pub A);
delegate_inner!(BroadcastAsVector);

impl<A: BroadcastAlgorithm> VectorAlgorithm for BroadcastAsVector<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init(degree)
    }

    fn message(&self, state: &Self::State, _port: usize) -> Self::Msg {
        self.0.broadcast(state)
    }

    fn message_into(&self, state: &Self::State, _port: usize, slot: &mut Payload<Self::Msg>) {
        self.0.broadcast_into(state, slot)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output> {
        self.0.step(state, received)
    }
}

/// Runs an [`MbAlgorithm`] (`Multiset ∩ Broadcast`) as a
/// [`VectorAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MbAsVector<A>(pub A);
delegate_inner!(MbAsVector);

impl<A: MbAlgorithm> VectorAlgorithm for MbAsVector<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init(degree)
    }

    fn message(&self, state: &Self::State, _port: usize) -> Self::Msg {
        self.0.broadcast(state)
    }

    fn message_into(&self, state: &Self::State, _port: usize, slot: &mut Payload<Self::Msg>) {
        self.0.broadcast_into(state, slot)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output> {
        let multiset: Multiset<Payload<Self::Msg>> = received.iter().cloned().collect();
        self.0.step(state, &multiset)
    }
}

/// Runs an [`MbAlgorithm`] as a [`BroadcastAlgorithm`] (forget the order in
/// which the vector reception presents messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MbAsBroadcast<A>(pub A);
delegate_inner!(MbAsBroadcast);

impl<A: MbAlgorithm> BroadcastAlgorithm for MbAsBroadcast<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init(degree)
    }

    fn broadcast(&self, state: &Self::State) -> Self::Msg {
        self.0.broadcast(state)
    }

    fn broadcast_into(&self, state: &Self::State, slot: &mut Payload<Self::Msg>) {
        self.0.broadcast_into(state, slot)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output> {
        let multiset: Multiset<Payload<Self::Msg>> = received.iter().cloned().collect();
        self.0.step(state, &multiset)
    }
}

/// Runs an [`SbAlgorithm`] (`Set ∩ Broadcast`) as a [`VectorAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SbAsVector<A>(pub A);
delegate_inner!(SbAsVector);

impl<A: SbAlgorithm> VectorAlgorithm for SbAsVector<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init(degree)
    }

    fn message(&self, state: &Self::State, _port: usize) -> Self::Msg {
        self.0.broadcast(state)
    }

    fn message_into(&self, state: &Self::State, _port: usize, slot: &mut Payload<Self::Msg>) {
        self.0.broadcast_into(state, slot)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output> {
        let set: BTreeSet<Payload<Self::Msg>> = received.iter().cloned().collect();
        self.0.step(state, &set)
    }
}

/// Runs an [`SbAlgorithm`] as an [`MbAlgorithm`] (forget multiplicities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SbAsMb<A>(pub A);
delegate_inner!(SbAsMb);

impl<A: SbAlgorithm> MbAlgorithm for SbAsMb<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init(degree)
    }

    fn broadcast(&self, state: &Self::State) -> Self::Msg {
        self.0.broadcast(state)
    }

    fn broadcast_into(&self, state: &Self::State, slot: &mut Payload<Self::Msg>) {
        self.0.broadcast_into(state, slot)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &Multiset<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output> {
        self.0.step(state, &received.to_set())
    }
}

/// Runs a degree-oblivious [`ObliviousAlgorithm`] (class `SBo`, Remark 2) as
/// an [`SbAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObliviousAsSb<A>(pub A);
delegate_inner!(ObliviousAsSb);

impl<A: ObliviousAlgorithm> SbAlgorithm for ObliviousAsSb<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, _degree: usize) -> Status<Self::State, Self::Output> {
        self.0.init()
    }

    fn broadcast(&self, state: &Self::State) -> Self::Msg {
        self.0.broadcast(state)
    }

    fn step(
        &self,
        state: &Self::State,
        received: &BTreeSet<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output> {
        self.0.step(state, received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An MB algorithm: after one round, output the number of distinct
    /// neighbour degrees (multiset reception keeps duplicates).
    #[derive(Debug, Clone, Copy, Default)]
    struct CountNeighbors;

    impl MbAlgorithm for CountNeighbors {
        type State = usize;
        type Msg = u8;
        type Output = usize;

        fn init(&self, degree: usize) -> Status<usize, usize> {
            Status::Running(degree)
        }

        fn broadcast(&self, _state: &usize) -> u8 {
            1
        }

        fn step(&self, _state: &usize, received: &Multiset<Payload<u8>>) -> Status<usize, usize> {
            Status::Stopped(received.len())
        }
    }

    #[test]
    fn mb_as_vector_counts_with_multiplicity() {
        let algo = MbAsVector(CountNeighbors);
        let s = match algo.init(3) {
            Status::Running(s) => s,
            Status::Stopped(_) => panic!("should run"),
        };
        assert_eq!(algo.message(&s, 0), algo.message(&s, 2));
        let out = algo.step(
            &s,
            &[Payload::Data(1), Payload::Data(1), Payload::Data(1)],
        );
        assert_eq!(out, Status::Stopped(3));
    }

    /// An SB algorithm: output whether any neighbour broadcast `true`.
    #[derive(Debug, Clone, Copy, Default)]
    struct AnyTrue;

    impl SbAlgorithm for AnyTrue {
        type State = bool;
        type Msg = bool;
        type Output = bool;

        fn init(&self, degree: usize) -> Status<bool, bool> {
            Status::Running(degree.is_multiple_of(2))
        }

        fn broadcast(&self, state: &bool) -> bool {
            *state
        }

        fn step(&self, _state: &bool, received: &BTreeSet<Payload<bool>>) -> Status<bool, bool> {
            Status::Stopped(received.contains(&Payload::Data(true)))
        }
    }

    #[test]
    fn sb_as_vector_collapses_duplicates() {
        let algo = SbAsVector(AnyTrue);
        let out = algo.step(&true, &[Payload::Data(false), Payload::Data(false)]);
        assert_eq!(out, Status::Stopped(false));
        let out = algo.step(&true, &[Payload::Data(false), Payload::Data(true)]);
        assert_eq!(out, Status::Stopped(true));
    }

    #[test]
    fn sb_as_mb_matches_direct_set_semantics() {
        let direct = AnyTrue;
        let via_mb = SbAsMb(AnyTrue);
        let m: Multiset<Payload<bool>> =
            vec![Payload::Data(true), Payload::Data(true)].into();
        let s: BTreeSet<Payload<bool>> = m.to_set();
        assert_eq!(SbAlgorithm::step(&direct, &false, &s), via_mb.step(&false, &m));
    }

    #[test]
    fn inner_accessors() {
        let w = MbAsVector::new(CountNeighbors);
        let _: &CountNeighbors = w.inner();
        let _: CountNeighbors = w.into_inner();
    }
}
