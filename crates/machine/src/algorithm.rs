//! Algorithm traits for the seven model variants.
//!
//! The paper's distributed state machine is `A = (Y, Z, z0, M, m0, μ, δ)`
//! (Section 1.1). Here:
//!
//! * `Y` (stopping states carrying the local output) and `Z` (intermediate
//!   states) become [`Status<S, O>`];
//! * `z0` becomes `init(degree)`;
//! * `μ` becomes `message(state, port)` (or `broadcast(state)` in the
//!   `Broadcast` classes);
//! * `δ` becomes `step(state, received)`, where the type of `received`
//!   enforces the class: a slice for `Vector`, a [`Multiset`] for
//!   `Multiset`, a [`BTreeSet`] for `Set` (Figure 3).
//!
//! The paper's special "no message" symbol `m0`, sent by stopped nodes, is
//! [`Payload::Silent`]. **Deviation from the paper, by design**: reception
//! vectors are *not* padded with `m0` up to `Δ` — a node receives exactly
//! `deg(v)` payloads. Since every algorithm knows its own degree, the
//! padding carries no information; dropping it keeps `Δ` out of the trait
//! signatures.
//!
//! Class membership is *static*: an implementation of [`SbAlgorithm`] is in
//! `Set ∩ Broadcast` by construction, because its transition function is
//! only ever shown the set of distinct incoming payloads and its emission
//! function cannot depend on the port. Adapters in [`crate::adapters`]
//! embed every class into [`VectorAlgorithm`], the one interface the
//! [`Simulator`](crate::Simulator) executes.

use crate::multiset::Multiset;
use crate::payload::Payload;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

/// Requirements on message types: comparable (for multiset/set semantics and
/// lexicographic history orderings), hashable, cloneable, printable.
pub trait Message: Clone + Ord + Eq + Hash + Debug {}

impl<T: Clone + Ord + Eq + Hash + Debug> Message for T {}

/// The status of a node: still computing, or stopped with a local output.
///
/// Corresponds to the partition of states into intermediate states `Z` and
/// stopping states `Y` in the paper. Once stopped, a node sends no further
/// messages and never changes its output (`δ(y, ~m) = y`, `μ(y, i) = m0`);
/// the simulator enforces this, so `step` is never called on stopped nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status<S, O> {
    /// The node is still running, in intermediate state `S`.
    Running(S),
    /// The node has halted with local output `O`.
    Stopped(O),
}

impl<S, O> Status<S, O> {
    /// Returns the output if stopped.
    pub fn output(&self) -> Option<&O> {
        match self {
            Status::Running(_) => None,
            Status::Stopped(o) => Some(o),
        }
    }

    /// Returns the intermediate state if running.
    pub fn running(&self) -> Option<&S> {
        match self {
            Status::Running(s) => Some(s),
            Status::Stopped(_) => None,
        }
    }

    /// Returns `true` if the node has stopped.
    pub fn is_stopped(&self) -> bool {
        matches!(self, Status::Stopped(_))
    }

    /// Maps the running state.
    pub fn map_state<S2>(self, f: impl FnOnce(S) -> S2) -> Status<S2, O> {
        match self {
            Status::Running(s) => Status::Running(f(s)),
            Status::Stopped(o) => Status::Stopped(o),
        }
    }
}

/// An algorithm in class `Vector`: full access to incoming and outgoing port
/// numbers. Problems solvable by such algorithms form the class `VV`
/// (or `VVc` when a consistent port numbering is promised).
pub trait VectorAlgorithm {
    /// Intermediate state (the paper's `Z`).
    type State: Clone + Debug;
    /// Message type (the paper's `M` without `m0`; see [`Payload`]).
    type Msg: Message;
    /// Local output (the paper's `Y`).
    type Output: Clone + Eq + Debug;

    /// Initial status of a node of the given degree (the paper's `z0`).
    fn init(&self, degree: usize) -> Status<Self::State, Self::Output>;

    /// The message sent to out-port `port` (`0 ≤ port < degree`); the
    /// paper's `μ`. Only called on running nodes.
    fn message(&self, state: &Self::State, port: usize) -> Self::Msg;

    /// Writes the message for `port` into `slot`, which holds the
    /// payload this node delivered on the same route last round
    /// (routing is static). Must leave `slot` holding `Payload::Data`
    /// of exactly [`VectorAlgorithm::message`]'s value; the default
    /// does precisely that. Algorithms with allocation-heavy message
    /// bodies (`Vec`s, histories) override it to recycle the previous
    /// round's buffers via [`Payload::data_mut`] — the simulator's
    /// inbox slots then reach steady state with zero allocation.
    fn message_into(&self, state: &Self::State, port: usize, slot: &mut Payload<Self::Msg>) {
        *slot = Payload::Data(self.message(state, port));
    }

    /// The state transition on receiving `received[i]` from in-port `i`;
    /// the paper's `δ`. Only called on running nodes.
    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output>;
}

/// An algorithm in class `Multiset`: outgoing port numbers available,
/// incoming messages delivered as a multiset. Defines problem class `MV`.
pub trait MultisetAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status of a node of the given degree.
    fn init(&self, degree: usize) -> Status<Self::State, Self::Output>;

    /// The message sent to out-port `port`.
    fn message(&self, state: &Self::State, port: usize) -> Self::Msg;

    /// Slot-recycling variant of [`MultisetAlgorithm::message`]; see
    /// [`VectorAlgorithm::message_into`] for the contract.
    fn message_into(&self, state: &Self::State, port: usize, slot: &mut Payload<Self::Msg>) {
        *slot = Payload::Data(self.message(state, port));
    }

    /// The state transition on receiving the given multiset of payloads.
    fn step(
        &self,
        state: &Self::State,
        received: &Multiset<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output>;
}

/// An algorithm in class `Set`: outgoing port numbers available, incoming
/// messages delivered as a set (multiplicities forgotten). Defines problem
/// class `SV`.
pub trait SetAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status of a node of the given degree.
    fn init(&self, degree: usize) -> Status<Self::State, Self::Output>;

    /// The message sent to out-port `port`.
    fn message(&self, state: &Self::State, port: usize) -> Self::Msg;

    /// Slot-recycling variant of [`SetAlgorithm::message`]; see
    /// [`VectorAlgorithm::message_into`] for the contract.
    fn message_into(&self, state: &Self::State, port: usize, slot: &mut Payload<Self::Msg>) {
        *slot = Payload::Data(self.message(state, port));
    }

    /// The state transition on receiving the given set of payloads.
    fn step(
        &self,
        state: &Self::State,
        received: &BTreeSet<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output>;
}

/// An algorithm in class `Broadcast` (with vector reception): one message to
/// all neighbours, incoming port numbers available. Defines problem class
/// `VB`.
pub trait BroadcastAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status of a node of the given degree.
    fn init(&self, degree: usize) -> Status<Self::State, Self::Output>;

    /// The single message broadcast to every neighbour.
    fn broadcast(&self, state: &Self::State) -> Self::Msg;

    /// Slot-recycling variant of [`BroadcastAlgorithm::broadcast`]
    /// (called once per out-port by the executor); see
    /// [`VectorAlgorithm::message_into`] for the contract.
    fn broadcast_into(&self, state: &Self::State, slot: &mut Payload<Self::Msg>) {
        *slot = Payload::Data(self.broadcast(state));
    }

    /// The state transition on receiving `received[i]` from in-port `i`.
    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output>;
}

/// An algorithm in `Multiset ∩ Broadcast`: broadcast emission, multiset
/// reception. Defines problem class `MB`.
pub trait MbAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status of a node of the given degree.
    fn init(&self, degree: usize) -> Status<Self::State, Self::Output>;

    /// The single message broadcast to every neighbour.
    fn broadcast(&self, state: &Self::State) -> Self::Msg;

    /// Slot-recycling variant of [`MbAlgorithm::broadcast`]; see
    /// [`VectorAlgorithm::message_into`] for the contract.
    fn broadcast_into(&self, state: &Self::State, slot: &mut Payload<Self::Msg>) {
        *slot = Payload::Data(self.broadcast(state));
    }

    /// The state transition on receiving the given multiset of payloads.
    fn step(
        &self,
        state: &Self::State,
        received: &Multiset<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output>;
}

/// An algorithm in `Set ∩ Broadcast`: broadcast emission, set reception —
/// the weakest non-trivial model (close to "beeping"). Defines problem
/// class `SB`.
pub trait SbAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status of a node of the given degree.
    fn init(&self, degree: usize) -> Status<Self::State, Self::Output>;

    /// The single message broadcast to every neighbour.
    fn broadcast(&self, state: &Self::State) -> Self::Msg;

    /// Slot-recycling variant of [`SbAlgorithm::broadcast`]; see
    /// [`VectorAlgorithm::message_into`] for the contract.
    fn broadcast_into(&self, state: &Self::State, slot: &mut Payload<Self::Msg>) {
        *slot = Payload::Data(self.broadcast(state));
    }

    /// The state transition on receiving the given set of payloads.
    fn step(
        &self,
        state: &Self::State,
        received: &BTreeSet<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output>;
}

/// A *degree-oblivious* `Set ∩ Broadcast` algorithm (the class `SBo` of
/// Remark 2): the initial state may not depend on the degree. Such
/// algorithms can only distinguish isolated from non-isolated nodes.
pub trait ObliviousAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status — identical for every node regardless of degree.
    fn init(&self) -> Status<Self::State, Self::Output>;

    /// The single message broadcast to every neighbour.
    fn broadcast(&self, state: &Self::State) -> Self::Msg;

    /// The state transition on receiving the given set of payloads.
    fn step(
        &self,
        state: &Self::State,
        received: &BTreeSet<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_accessors() {
        let r: Status<u32, bool> = Status::Running(7);
        let s: Status<u32, bool> = Status::Stopped(true);
        assert_eq!(r.running(), Some(&7));
        assert_eq!(r.output(), None);
        assert!(!r.is_stopped());
        assert_eq!(s.output(), Some(&true));
        assert_eq!(s.running(), None);
        assert!(s.is_stopped());
    }

    #[test]
    fn status_map_state() {
        let r: Status<u32, bool> = Status::Running(7);
        assert_eq!(r.map_state(|x| x + 1), Status::Running(8));
        let s: Status<u32, bool> = Status::Stopped(false);
        assert_eq!(s.map_state(|x| x + 1), Status::Stopped(false));
    }
}
