//! Dynamic class checkers.
//!
//! Class membership in this workspace is already *static* (traits), but the
//! paper defines the classes semantically: a `Vector` machine is in
//! `Multiset` if `δ` is invariant under permutations of the reception
//! vector, in `Set` if invariant under multiplicity changes, and in
//! `Broadcast` if `μ` ignores the port (Section 1.5). These checkers test
//! the semantic conditions on receptions harvested from a real execution —
//! useful for validating hand-written [`VectorAlgorithm`]s and the adapter
//! wrappers themselves.

use crate::algorithm::{Status, VectorAlgorithm};
use crate::payload::Payload;
use portnum_graph::{Graph, Port, PortNumbering};

/// States and receptions observed while running `algo` on `(g, p)`.
#[derive(Debug, Clone)]
pub struct Observations<A: VectorAlgorithm> {
    /// Running states observed, paired with the reception they were fed.
    #[allow(clippy::type_complexity)] // (state, reception) pairs, verbatim
    pub samples: Vec<(A::State, Vec<Payload<A::Msg>>)>,
}

/// Runs `algo` for at most `max_rounds` rounds, recording every
/// `(state, reception)` pair fed to `δ`.
pub fn observe<A: VectorAlgorithm>(
    algo: &A,
    g: &Graph,
    p: &PortNumbering,
    max_rounds: usize,
) -> Observations<A> {
    let mut states: Vec<Status<A::State, A::Output>> =
        g.nodes().map(|v| algo.init(g.degree(v))).collect();
    let mut samples = Vec::new();
    for _ in 0..max_rounds {
        if states.iter().all(Status::is_stopped) {
            break;
        }
        let mut inboxes: Vec<Vec<Payload<A::Msg>>> =
            g.nodes().map(|v| vec![Payload::Silent; g.degree(v)]).collect();
        for v in g.nodes() {
            if let Status::Running(state) = &states[v] {
                for i in 0..g.degree(v) {
                    let target = p.forward(Port::new(v, i));
                    inboxes[target.node][target.index] = Payload::Data(algo.message(state, i));
                }
            }
        }
        for v in g.nodes() {
            if let Status::Running(state) = states[v].clone() {
                samples.push((state.clone(), inboxes[v].clone()));
                states[v] = algo.step(&state, &inboxes[v]);
            }
        }
    }
    Observations { samples }
}

fn statuses_equal<A: VectorAlgorithm>(
    a: &Status<A::State, A::Output>,
    b: &Status<A::State, A::Output>,
) -> bool
where
    A::State: PartialEq,
{
    match (a, b) {
        (Status::Running(x), Status::Running(y)) => x == y,
        (Status::Stopped(x), Status::Stopped(y)) => x == y,
        _ => false,
    }
}

/// Checks `δ` invariance under all rotations and the full reversal of each
/// observed reception (a practical stand-in for all permutations): the
/// semantic condition for membership in class `Multiset`.
pub fn is_order_invariant<A: VectorAlgorithm>(algo: &A, obs: &Observations<A>) -> bool
where
    A::State: PartialEq,
{
    obs.samples.iter().all(|(state, received)| {
        let reference = algo.step(state, received);
        let mut rotated = received.clone();
        for _ in 0..received.len() {
            rotated.rotate_left(1);
            if !statuses_equal::<A>(&algo.step(state, &rotated), &reference) {
                return false;
            }
        }
        let mut reversed = received.clone();
        reversed.reverse();
        statuses_equal::<A>(&algo.step(state, &reversed), &reference)
    })
}

/// Checks `δ` invariance under redistributing multiplicities while keeping
/// the underlying *set* of the reception fixed: the semantic condition
/// separating `Set` from `Multiset`.
///
/// For each observed reception with a repeated entry, every distinct value
/// in turn absorbs all the surplus copies; each such variant has the same
/// set and must produce the same transition.
pub fn is_multiplicity_invariant<A: VectorAlgorithm>(algo: &A, obs: &Observations<A>) -> bool
where
    A::State: PartialEq,
{
    obs.samples.iter().all(|(state, received)| {
        let distinct: Vec<&Payload<A::Msg>> = {
            let set: std::collections::BTreeSet<_> = received.iter().collect();
            set.into_iter().collect()
        };
        if distinct.len() == received.len() || distinct.is_empty() {
            return true; // multiplicities are forced; nothing to vary
        }
        let reference = algo.step(state, received);
        distinct.iter().all(|&absorber| {
            // One copy of every distinct value, then pad with `absorber`.
            let mut variant: Vec<Payload<A::Msg>> =
                distinct.iter().map(|&m| m.clone()).collect();
            variant.resize(received.len(), absorber.clone());
            statuses_equal::<A>(&algo.step(state, &variant), &reference)
        })
    })
}

/// Checks that `μ` ignores the out-port on every observed state: the
/// semantic condition for membership in class `Broadcast`.
pub fn is_broadcast<A: VectorAlgorithm>(algo: &A, obs: &Observations<A>, max_degree: usize) -> bool {
    obs.samples.iter().all(|(state, _)| {
        let reference = algo.message(state, 0);
        (1..max_degree.max(1)).all(|i| algo.message(state, i) == reference)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{MbAsVector, SbAsVector};
    use crate::algorithm::{MbAlgorithm, SbAlgorithm};
    use crate::multiset::Multiset;
    use std::collections::BTreeSet;

    /// Counts odd-degree neighbours; genuinely multiset, not set.
    #[derive(Debug)]
    struct OddCount;

    impl MbAlgorithm for OddCount {
        type State = usize;
        type Msg = bool;
        type Output = usize;

        fn init(&self, degree: usize) -> Status<usize, usize> {
            Status::Running(degree)
        }

        fn broadcast(&self, state: &usize) -> bool {
            state % 2 == 1
        }

        fn step(&self, _: &usize, received: &Multiset<Payload<bool>>) -> Status<usize, usize> {
            Status::Stopped(received.count(&Payload::Data(true)))
        }
    }

    /// Purely set-based: does any neighbour have odd degree?
    #[derive(Debug)]
    struct AnyOdd;

    impl SbAlgorithm for AnyOdd {
        type State = usize;
        type Msg = bool;
        type Output = bool;

        fn init(&self, degree: usize) -> Status<usize, bool> {
            Status::Running(degree)
        }

        fn broadcast(&self, state: &usize) -> bool {
            state % 2 == 1
        }

        fn step(&self, _: &usize, received: &BTreeSet<Payload<bool>>) -> Status<usize, bool> {
            Status::Stopped(received.contains(&Payload::Data(true)))
        }
    }

    /// A genuine vector algorithm: output depends on the message on in-port
    /// 0, and messages depend on the out-port.
    #[derive(Debug)]
    struct FirstPort;

    impl VectorAlgorithm for FirstPort {
        type State = usize;
        type Msg = usize;
        type Output = usize;

        fn init(&self, degree: usize) -> Status<usize, usize> {
            Status::Running(degree)
        }

        fn message(&self, state: &usize, port: usize) -> usize {
            state * 10 + port
        }

        fn step(&self, _: &usize, received: &[Payload<usize>]) -> Status<usize, usize> {
            Status::Stopped(match received.first() {
                Some(Payload::Data(m)) => *m + 1,
                _ => 0,
            })
        }
    }

    /// A star whose centre also has one degree-2 neighbour, so the centre's
    /// reception mixes distinct values with repetitions.
    fn tailed_star() -> portnum_graph::Graph {
        portnum_graph::Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5)]).unwrap()
    }

    #[test]
    fn mb_algorithm_is_order_invariant_but_not_set() {
        let g = tailed_star();
        let p = portnum_graph::PortNumbering::consistent(&g);
        let algo = MbAsVector(OddCount);
        let obs = observe(&algo, &g, &p, 10);
        assert!(is_order_invariant(&algo, &obs));
        assert!(is_broadcast(&algo, &obs, g.max_degree()));
        // The centre receives {odd×3, even×1}: redistributing multiplicities
        // within the same set changes the count of `odd`, so the
        // multiplicity check must fail.
        assert!(!is_multiplicity_invariant(&algo, &obs));
    }

    #[test]
    fn sb_algorithm_passes_all_checks() {
        let g = tailed_star();
        let p = portnum_graph::PortNumbering::consistent(&g);
        let algo = SbAsVector(AnyOdd);
        let obs = observe(&algo, &g, &p, 10);
        assert!(is_order_invariant(&algo, &obs));
        assert!(is_multiplicity_invariant(&algo, &obs));
        assert!(is_broadcast(&algo, &obs, g.max_degree()));
    }

    #[test]
    fn vector_algorithm_fails_order_invariance() {
        // The centre of the tailed star receives distinct values (degree-1
        // leaves broadcast 10, the degree-2 neighbour sends 20 or 21), so
        // rotating the reception changes in-port 0.
        let g = tailed_star();
        let p = portnum_graph::PortNumbering::consistent(&g);
        let obs = observe(&FirstPort, &g, &p, 10);
        assert!(!is_order_invariant(&FirstPort, &obs));
        assert!(!is_broadcast(&FirstPort, &obs, g.max_degree()));
    }
}
