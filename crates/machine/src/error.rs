//! Execution errors.

use std::error::Error;
use std::fmt;

/// Errors raised by the [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionError {
    /// The round limit was reached with nodes still running.
    RoundLimit {
        /// The configured limit.
        limit: usize,
        /// How many nodes had not stopped.
        still_running: usize,
    },
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ExecutionError::RoundLimit { limit, still_running } => write!(
                f,
                "round limit {limit} reached with {still_running} nodes still running"
            ),
        }
    }
}

impl Error for ExecutionError {}
