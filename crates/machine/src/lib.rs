//! # portnum-machine
//!
//! Distributed state machines for the port-numbering model and its weak
//! variants, after Hella et al., “Weak models of distributed computing, with
//! connections to modal logic” (PODC 2012), Sections 1.1–1.5.
//!
//! * Algorithm traits for all seven model variants — [`VectorAlgorithm`],
//!   [`MultisetAlgorithm`], [`SetAlgorithm`], [`BroadcastAlgorithm`],
//!   [`MbAlgorithm`], [`SbAlgorithm`], and the degree-oblivious
//!   [`ObliviousAlgorithm`] of Remark 2 — with class membership enforced by
//!   the trait signatures themselves.
//! * [`adapters`] embedding every class into [`VectorAlgorithm`] (the
//!   trivial inclusions of Figure 5a).
//! * The synchronous [`Simulator`] of Section 1.3, with round statistics
//!   and abstract [`MessageSize`] accounting.
//! * [`Multiset`] and [`Payload`] (`m0`) reception structures.
//! * [`check`]: dynamic validators for the semantic class conditions.
//!
//! # Quick start
//!
//! ```
//! use portnum_graph::{generators, PortNumbering};
//! use portnum_machine::{
//!     adapters::SbAsVector, Payload, SbAlgorithm, Simulator, Status,
//! };
//! use std::collections::BTreeSet;
//!
//! /// `Set ∩ Broadcast`: am I a local maximum by degree?
//! #[derive(Debug)]
//! struct LocalMax;
//!
//! impl SbAlgorithm for LocalMax {
//!     type State = usize;
//!     type Msg = usize;
//!     type Output = bool;
//!
//!     fn init(&self, degree: usize) -> Status<usize, bool> {
//!         Status::Running(degree)
//!     }
//!     fn broadcast(&self, state: &usize) -> usize {
//!         *state
//!     }
//!     fn step(&self, state: &usize, received: &BTreeSet<Payload<usize>>) -> Status<usize, bool> {
//!         let max_nbr = received.iter().filter_map(Payload::data).max();
//!         Status::Stopped(max_nbr.is_none_or(|&m| m <= *state))
//!     }
//! }
//!
//! let g = generators::star(4);
//! let p = PortNumbering::consistent(&g);
//! let run = Simulator::new().run(&SbAsVector(LocalMax), &g, &p)?;
//! assert_eq!(run.outputs()[0], true);   // the centre
//! assert_eq!(run.outputs()[1], false);  // a leaf
//! # Ok::<(), portnum_machine::ExecutionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
mod algorithm;
pub mod check;
mod error;
mod multiset;
mod payload;
mod simulator;
mod size;

pub use algorithm::{
    BroadcastAlgorithm, MbAlgorithm, Message, MultisetAlgorithm, ObliviousAlgorithm,
    SbAlgorithm, SetAlgorithm, Status, VectorAlgorithm,
};
pub use error::ExecutionError;
pub use multiset::Multiset;
pub use payload::{data_messages, Payload};
pub use simulator::{Execution, RoundStats, Simulator};
pub use size::MessageSize;
