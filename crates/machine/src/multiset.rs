//! An ordered multiset, the reception structure of `Multiset` algorithms.

use std::collections::BTreeMap;
use std::fmt;
use std::iter::FromIterator;

/// A finite multiset over an ordered element type.
///
/// This is the paper's `multiset(~a)`: the vector of incoming messages with
/// the port order forgotten but multiplicities kept (Figure 3).
///
/// # Examples
///
/// ```
/// use portnum_machine::Multiset;
///
/// let a: Multiset<&str> = ["a", "b", "a"].into_iter().collect();
/// let b: Multiset<&str> = ["b", "a", "a"].into_iter().collect();
/// assert_eq!(a, b);                 // order is forgotten...
/// assert_eq!(a.count(&"a"), 2);     // ...multiplicity is not
/// assert_eq!(a.len(), 3);
/// assert_eq!(a.distinct_len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Multiset<T: Ord> {
    counts: BTreeMap<T, usize>,
    len: usize,
}

impl<T: Ord> Multiset<T> {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Multiset { counts: BTreeMap::new(), len: 0 }
    }

    /// Inserts one occurrence of `value`.
    pub fn insert(&mut self, value: T) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.len += 1;
    }

    /// Inserts `n` occurrences of `value`.
    pub fn insert_n(&mut self, value: T, n: usize) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.len += n;
    }

    /// Removes one occurrence of `value`; returns `true` if one was present.
    pub fn remove(&mut self, value: &T) -> bool {
        match self.counts.get_mut(value) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.len -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(value);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Number of occurrences of `value`.
    pub fn count(&self, value: &T) -> usize {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Returns `true` if `value` occurs at least once.
    pub fn contains(&self, value: &T) -> bool {
        self.counts.contains_key(value)
    }

    /// Total number of elements, counted with multiplicity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct elements.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(element, multiplicity)` pairs in ascending order.
    pub fn counts(&self) -> impl Iterator<Item = (&T, usize)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// Iterates over distinct elements in ascending order.
    pub fn distinct(&self) -> impl Iterator<Item = &T> {
        self.counts.keys()
    }

    /// Iterates over all elements with multiplicity, in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.counts.iter().flat_map(|(k, &c)| std::iter::repeat_n(k, c))
    }

    /// The underlying set: distinct elements only. This is the paper's
    /// `set(~a)` obtained from `multiset(~a)` by forgetting multiplicities.
    pub fn to_set(&self) -> std::collections::BTreeSet<T>
    where
        T: Clone,
    {
        self.counts.keys().cloned().collect()
    }

    /// Merges another multiset into this one.
    pub fn union_with(&mut self, other: &Multiset<T>)
    where
        T: Clone,
    {
        for (k, c) in other.counts() {
            self.insert_n(k.clone(), c);
        }
    }
}

impl<T: Ord> FromIterator<T> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut m = Multiset::new();
        for x in iter {
            m.insert(x);
        }
        m
    }
}

impl<T: Ord> Extend<T> for Multiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.insert(x);
        }
    }
}

impl<T: Ord> From<Vec<T>> for Multiset<T> {
    fn from(v: Vec<T>) -> Self {
        v.into_iter().collect()
    }
}

impl<T: Ord + fmt::Display> fmt::Display for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (k, c) in self.counts() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if c == 1 {
                write!(f, "{k}")?;
            } else {
                write!(f, "{k}×{c}")?;
            }
        }
        write!(f, "}}")
    }
}

impl<'a, T: Ord> IntoIterator for &'a Multiset<T> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_count_remove() {
        let mut m = Multiset::new();
        m.insert(3);
        m.insert(3);
        m.insert(5);
        assert_eq!(m.len(), 3);
        assert_eq!(m.count(&3), 2);
        assert_eq!(m.count(&4), 0);
        assert!(m.remove(&3));
        assert_eq!(m.count(&3), 1);
        assert!(m.remove(&3));
        assert!(!m.remove(&3));
        assert_eq!(m.len(), 1);
        assert!(m.contains(&5));
        assert!(!m.contains(&3));
    }

    #[test]
    fn equality_ignores_order_keeps_multiplicity() {
        let a: Multiset<u32> = vec![1, 2, 1].into();
        let b: Multiset<u32> = vec![2, 1, 1].into();
        let c: Multiset<u32> = vec![1, 2].into();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn set_projection() {
        let a: Multiset<u32> = vec![1, 2, 1].into();
        let s = a.to_set();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&1) && s.contains(&2));
    }

    #[test]
    fn iteration_orders() {
        let m: Multiset<i32> = vec![5, 1, 5, 3].into();
        let all: Vec<_> = m.iter().copied().collect();
        assert_eq!(all, vec![1, 3, 5, 5]);
        let distinct: Vec<_> = m.distinct().copied().collect();
        assert_eq!(distinct, vec![1, 3, 5]);
        let counts: Vec<_> = m.counts().map(|(k, c)| (*k, c)).collect();
        assert_eq!(counts, vec![(1, 1), (3, 1), (5, 2)]);
    }

    #[test]
    fn insert_n_and_union() {
        let mut a: Multiset<&str> = Multiset::new();
        a.insert_n("x", 3);
        a.insert_n("y", 0);
        assert_eq!(a.len(), 3);
        assert!(!a.contains(&"y"));
        let b: Multiset<&str> = vec!["x", "z"].into();
        a.union_with(&b);
        assert_eq!(a.count(&"x"), 4);
        assert_eq!(a.count(&"z"), 1);
    }

    #[test]
    fn display_format() {
        let m: Multiset<u8> = vec![1, 1, 2].into();
        assert_eq!(format!("{m}"), "{1×2, 2}");
        let e: Multiset<u8> = Multiset::new();
        assert_eq!(format!("{e}"), "{}");
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let a: Multiset<u8> = vec![1].into();
        let b: Multiset<u8> = vec![1, 1].into();
        assert!(a < b || b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}
