//! The `m0` "no message" symbol of the paper, as an explicit payload type.

use std::fmt;

/// What arrives on an in-port in one round: either the special "no message"
/// symbol `m0` (the sender has stopped) or an actual message.
///
/// `Silent` orders before every `Data(_)`, giving payloads a canonical total
/// order whenever the message type has one.
///
/// # Examples
///
/// ```
/// use portnum_machine::Payload;
///
/// let a: Payload<u32> = Payload::Data(5);
/// assert_eq!(a.data(), Some(&5));
/// assert!(Payload::<u32>::Silent < a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Payload<M> {
    /// The paper's `m0`: the sending node has stopped.
    Silent,
    /// An ordinary message.
    Data(M),
}

impl<M> Payload<M> {
    /// Returns the message, if any.
    pub fn data(&self) -> Option<&M> {
        match self {
            Payload::Silent => None,
            Payload::Data(m) => Some(m),
        }
    }

    /// Consumes the payload, returning the message if any.
    pub fn into_data(self) -> Option<M> {
        match self {
            Payload::Silent => None,
            Payload::Data(m) => Some(m),
        }
    }

    /// Mutably borrows the message, if any.
    ///
    /// This is the hook `message_into`/`broadcast_into` overrides use to
    /// recycle a previous round's allocation in place: the simulator
    /// hands each sender the payload it delivered on the same route last
    /// round, and a `Vec`-bodied message can `clear()` and refill it
    /// instead of allocating afresh.
    pub fn data_mut(&mut self) -> Option<&mut M> {
        match self {
            Payload::Silent => None,
            Payload::Data(m) => Some(m),
        }
    }

    /// Returns `true` for `Silent`.
    pub fn is_silent(&self) -> bool {
        matches!(self, Payload::Silent)
    }

    /// Maps the message type.
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Payload<N> {
        match self {
            Payload::Silent => Payload::Silent,
            Payload::Data(m) => Payload::Data(f(m)),
        }
    }

    /// Borrows the payload contents.
    pub fn as_ref(&self) -> Payload<&M> {
        match self {
            Payload::Silent => Payload::Silent,
            Payload::Data(m) => Payload::Data(m),
        }
    }
}

impl<M> From<Option<M>> for Payload<M> {
    fn from(o: Option<M>) -> Self {
        match o {
            None => Payload::Silent,
            Some(m) => Payload::Data(m),
        }
    }
}

impl<M: fmt::Display> fmt::Display for Payload<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Silent => write!(f, "∅"),
            Payload::Data(m) => write!(f, "{m}"),
        }
    }
}

/// Extracts the non-silent messages from a reception slice, in port order.
pub fn data_messages<M>(received: &[Payload<M>]) -> impl Iterator<Item = &M> {
    received.iter().filter_map(Payload::data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_accessors() {
        let s: Payload<u8> = Payload::Silent;
        let d = Payload::Data(0u8);
        assert!(s < d);
        assert!(s.is_silent());
        assert!(!d.is_silent());
        assert_eq!(d.into_data(), Some(0));
        assert_eq!(s.into_data(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Payload::from(Some(3)), Payload::Data(3));
        assert_eq!(Payload::<u8>::from(None), Payload::Silent);
        assert_eq!(Payload::Data(3).map(|x| x * 2), Payload::Data(6));
        assert_eq!(Payload::<u8>::Silent.map(|x| x * 2), Payload::Silent);
        assert_eq!(Payload::Data(3).as_ref(), Payload::Data(&3));
    }

    #[test]
    fn data_messages_filters_silence() {
        let r = [Payload::Data(1), Payload::Silent, Payload::Data(2)];
        let v: Vec<_> = data_messages(&r).copied().collect();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Payload::<u8>::Silent), "∅");
        assert_eq!(format!("{}", Payload::Data(9)), "9");
    }
}
