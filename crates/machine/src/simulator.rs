//! The synchronous executor of Section 1.3.
//!
//! Given a state machine `A`, a graph `G`, and a port numbering `p`, the
//! execution is defined round by round: every running node sends one message
//! per out-port (`μ`), messages are routed along `p`, and every running node
//! applies the transition `δ` to the vector of payloads indexed by its
//! in-ports. Stopped nodes emit [`Payload::Silent`] (the paper's `m0`) and
//! never change state.

use crate::algorithm::{Status, VectorAlgorithm};
use crate::error::ExecutionError;
use crate::payload::Payload;
use crate::size::MessageSize;
use portnum_graph::{Graph, Port, PortNumbering};

/// Per-round statistics recorded during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Messages actually sent (silent payloads from stopped nodes excluded).
    pub messages_sent: u64,
    /// Sum of [`MessageSize::size_units`] over all sent messages.
    pub total_message_units: u64,
    /// Largest single message this round.
    pub max_message_units: u64,
    /// Nodes still running *before* the round's transition.
    pub nodes_running: usize,
}

/// The result of a completed run: every node has stopped.
#[derive(Debug, Clone)]
pub struct Execution<O> {
    outputs: Vec<O>,
    rounds: usize,
    stats: Vec<RoundStats>,
    stop_times: Vec<usize>,
}

impl<O> Execution<O> {
    /// Local outputs, indexed by node (the solution `S: V → Y`).
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// Consumes the execution, returning the outputs.
    pub fn into_outputs(self) -> Vec<O> {
        self.outputs
    }

    /// The stopping time `T`: the first round at which every node had
    /// stopped (0 if all initial states were stopping states).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Per-round statistics (`stats()[t]` describes round `t + 1`).
    pub fn stats(&self) -> &[RoundStats] {
        &self.stats
    }

    /// Round at which each node stopped.
    pub fn stop_times(&self) -> &[usize] {
        &self.stop_times
    }

    /// Largest message observed over the whole run.
    pub fn max_message_units(&self) -> u64 {
        self.stats.iter().map(|s| s.max_message_units).max().unwrap_or(0)
    }

    /// Total message units over the whole run.
    pub fn total_message_units(&self) -> u64 {
        self.stats.iter().map(|s| s.total_message_units).sum()
    }
}

/// Synchronous simulator with a round-limit guard.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, PortNumbering};
/// use portnum_machine::{Simulator, Status, VectorAlgorithm, Payload};
///
/// /// One round: learn the out-port index your port-0 neighbour uses
/// /// towards you... or simply stop immediately with your degree.
/// #[derive(Debug)]
/// struct Degree;
/// impl VectorAlgorithm for Degree {
///     type State = ();
///     type Msg = ();
///     type Output = usize;
///     fn init(&self, degree: usize) -> Status<(), usize> {
///         Status::Stopped(degree)
///     }
///     fn message(&self, _: &(), _: usize) {}
///     fn step(&self, _: &(), _: &[Payload<()>]) -> Status<(), usize> {
///         unreachable!("all nodes stop at time 0")
///     }
/// }
///
/// let g = generators::star(3);
/// let p = PortNumbering::consistent(&g);
/// let run = Simulator::new().run(&Degree, &g, &p)?;
/// assert_eq!(run.rounds(), 0);
/// assert_eq!(run.outputs(), &[3, 1, 1, 1]);
/// # Ok::<(), portnum_machine::ExecutionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Simulator {
    max_rounds: usize,
}

impl Simulator {
    /// Creates a simulator with the default round limit (100 000).
    pub fn new() -> Self {
        Simulator { max_rounds: 100_000 }
    }

    /// Sets the round limit after which a non-terminating run is aborted.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Executes `algo` on `(g, p)` until every node stops.
    ///
    /// # Errors
    ///
    /// Returns [`ExecutionError::RoundLimit`] if some node is still running
    /// after the configured number of rounds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is a port numbering of a graph with a different number
    /// of nodes than `g`.
    pub fn run<A>(
        &self,
        algo: &A,
        g: &Graph,
        p: &PortNumbering,
    ) -> Result<Execution<A::Output>, ExecutionError>
    where
        A: VectorAlgorithm,
        A::Msg: MessageSize,
    {
        assert_eq!(g.len(), p.len(), "graph and port numbering sizes differ");
        let n = g.len();
        let mut states: Vec<Status<A::State, A::Output>> =
            g.nodes().map(|v| algo.init(g.degree(v))).collect();
        let mut stop_times = vec![0usize; n];
        let mut stats = Vec::new();
        let mut round = 0usize;

        // Hoisted out of the round loop: the inbox arena, the routing
        // table, and the running-node count (updated when a node stops
        // instead of rescanned twice per round).
        //
        // Inboxes live in ONE flat arena indexed by per-node port
        // offsets — in-port `i` of node `v` is `arena[offsets[v] + i]` —
        // so a round touches a single contiguous allocation instead of
        // chasing one `Vec` per node. Routing is resolved all the way to
        // arena slots: out-port `i` of node `v` delivers into
        // `arena[route_slots[offsets[v] + i]]`, making each send one
        // indexed store (the port numbering never changes mid-run).
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in g.nodes() {
            offsets.push(offsets[v] + g.degree(v));
        }
        let mut route_slots = Vec::with_capacity(offsets[n]);
        for v in g.nodes() {
            for i in 0..g.degree(v) {
                let target = p.forward(Port::new(v, i));
                route_slots.push(offsets[target.node] + target.index);
            }
        }
        let mut arena: Vec<Payload<A::Msg>> = vec![Payload::Silent; offsets[n]];
        let mut running = states.iter().filter(|s| !s.is_stopped()).count();

        while running > 0 {
            if round == self.max_rounds {
                return Err(ExecutionError::RoundLimit {
                    limit: self.max_rounds,
                    still_running: running,
                });
            }
            round += 1;

            // Phase 1: every running node writes into its neighbours'
            // in-port slots; stopped nodes contribute silence. Each
            // slot is fed by exactly one out-port, so visiting every
            // sender covers the arena without a blanket reset — and a
            // running sender's slot still holds the payload it
            // delivered on the same route last round, which
            // `message_into` overrides recycle in place instead of
            // dropping and reallocating (the payload arena stays at
            // zero allocations per round in steady state).
            let mut round_stats = RoundStats { nodes_running: running, ..RoundStats::default() };
            for v in g.nodes() {
                let base = offsets[v];
                match &states[v] {
                    Status::Running(state) => {
                        for i in 0..g.degree(v) {
                            let slot = &mut arena[route_slots[base + i]];
                            algo.message_into(state, i, slot);
                            let units = slot.data().map_or(0, MessageSize::size_units);
                            round_stats.messages_sent += 1;
                            round_stats.total_message_units += units;
                            round_stats.max_message_units =
                                round_stats.max_message_units.max(units);
                        }
                    }
                    Status::Stopped(_) => {
                        for i in 0..g.degree(v) {
                            arena[route_slots[base + i]] = Payload::Silent;
                        }
                    }
                }
            }

            // Phase 2: simultaneous transitions.
            for v in g.nodes() {
                if let Status::Running(state) = &states[v] {
                    let next = algo.step(state, &arena[offsets[v]..offsets[v + 1]]);
                    if next.is_stopped() {
                        stop_times[v] = round;
                        running -= 1;
                    }
                    states[v] = next;
                }
            }
            stats.push(round_stats);
        }

        let outputs = states
            .into_iter()
            .map(|s| match s {
                Status::Stopped(o) => o,
                Status::Running(_) => unreachable!("loop exits only when all stopped"),
            })
            .collect();
        Ok(Execution { outputs, rounds: round, stats, stop_times })
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::SbAsVector;
    use crate::algorithm::SbAlgorithm;
    use portnum_graph::generators;
    use std::collections::BTreeSet;

    /// Every node forwards a counter for `k` rounds, then stops with it.
    #[derive(Debug)]
    struct CountRounds {
        k: usize,
    }

    impl VectorAlgorithm for CountRounds {
        type State = usize;
        type Msg = usize;
        type Output = usize;

        fn init(&self, _degree: usize) -> Status<usize, usize> {
            if self.k == 0 {
                Status::Stopped(0)
            } else {
                Status::Running(0)
            }
        }

        fn message(&self, state: &usize, _port: usize) -> usize {
            *state
        }

        fn step(&self, state: &usize, _received: &[Payload<usize>]) -> Status<usize, usize> {
            let next = state + 1;
            if next == self.k {
                Status::Stopped(next)
            } else {
                Status::Running(next)
            }
        }
    }

    #[test]
    fn runs_for_exactly_k_rounds() {
        let g = generators::cycle(5);
        let p = PortNumbering::consistent(&g);
        for k in [0usize, 1, 3, 10] {
            let run = Simulator::new().run(&CountRounds { k }, &g, &p).unwrap();
            assert_eq!(run.rounds(), k);
            assert!(run.outputs().iter().all(|&o| o == k));
            assert_eq!(run.stats().len(), k);
            if k > 0 {
                assert_eq!(run.stats()[0].messages_sent, 10);
                assert_eq!(run.stats()[0].nodes_running, 5);
                assert!(run.stop_times().iter().all(|&t| t == k));
            }
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::cycle(3);
        let p = PortNumbering::consistent(&g);
        let err = Simulator::new()
            .with_max_rounds(4)
            .run(&CountRounds { k: 10 }, &g, &p)
            .unwrap_err();
        assert_eq!(err, ExecutionError::RoundLimit { limit: 4, still_running: 3 });
    }

    /// A node stops at a round equal to its degree; others keep relaying.
    /// Exercises silent payloads from stopped nodes.
    #[derive(Debug)]
    struct StopAtDegree;

    impl VectorAlgorithm for StopAtDegree {
        type State = (usize, usize, usize); // (round, degree, silent_seen)
        type Msg = u8;
        type Output = usize;

        fn init(&self, degree: usize) -> Status<(usize, usize, usize), usize> {
            Status::Running((0, degree, 0))
        }

        fn message(&self, _state: &(usize, usize, usize), _port: usize) -> u8 {
            0
        }

        fn step(
            &self,
            &(round, degree, silent): &(usize, usize, usize),
            received: &[Payload<u8>],
        ) -> Status<(usize, usize, usize), usize> {
            let silent = silent + received.iter().filter(|p| p.is_silent()).count();
            let round = round + 1;
            if round >= degree {
                Status::Stopped(silent)
            } else {
                Status::Running((round, degree, silent))
            }
        }
    }

    #[test]
    fn stopped_nodes_send_silence() {
        // Star with 3 leaves: leaves stop after round 1, centre after round 3.
        // In rounds 2 and 3 the centre hears silence from all 3 leaves.
        let g = generators::star(3);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&StopAtDegree, &g, &p).unwrap();
        assert_eq!(run.rounds(), 3);
        assert_eq!(run.outputs()[0], 6, "centre hears 3 silent ports in rounds 2 and 3");
        assert!(run.outputs()[1..].iter().all(|&o| o == 0));
        assert_eq!(run.stop_times(), &[3, 1, 1, 1]);
        // Message counts decay as nodes stop.
        assert_eq!(run.stats()[0].messages_sent, 6);
        assert_eq!(run.stats()[1].messages_sent, 3);
        assert_eq!(run.stats()[2].messages_sent, 3);
    }

    /// SB echo: stop after one round, reporting whether any neighbour exists.
    #[derive(Debug)]
    struct Ping;

    impl SbAlgorithm for Ping {
        type State = ();
        type Msg = ();
        type Output = bool;

        fn init(&self, _degree: usize) -> Status<(), bool> {
            Status::Running(())
        }

        fn broadcast(&self, _state: &()) {}

        fn step(&self, _state: &(), received: &BTreeSet<Payload<()>>) -> Status<(), bool> {
            Status::Stopped(!received.is_empty())
        }
    }

    #[test]
    fn isolated_nodes_hear_nothing() {
        let g = Graph::disjoint_union(&[&generators::path(2), &Graph::empty(1)]);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&SbAsVector(Ping), &g, &p).unwrap();
        assert_eq!(run.outputs(), &[true, true, false]);
    }

    /// A `Vec`-bodied message algorithm in two flavours: the default
    /// allocate-per-message path and a slot-recycling `message_into`
    /// override. Both must produce identical executions.
    #[derive(Debug)]
    struct VecEcho {
        rounds: usize,
        recycle: bool,
    }

    impl VectorAlgorithm for VecEcho {
        type State = usize; // rounds elapsed
        type Msg = Vec<usize>;
        type Output = usize; // sum of everything heard

        fn init(&self, _degree: usize) -> Status<usize, usize> {
            Status::Running(0)
        }

        fn message(&self, round: &usize, port: usize) -> Vec<usize> {
            vec![*round; port + 1]
        }

        fn message_into(&self, round: &usize, port: usize, slot: &mut Payload<Vec<usize>>) {
            if !self.recycle {
                *slot = Payload::Data(self.message(round, port));
                return;
            }
            match slot.data_mut() {
                Some(body) => {
                    body.clear();
                    body.resize(port + 1, *round);
                }
                None => *slot = Payload::Data(self.message(round, port)),
            }
        }

        fn step(&self, round: &usize, received: &[Payload<Vec<usize>>]) -> Status<usize, usize> {
            let heard: usize =
                received.iter().filter_map(Payload::data).flatten().sum::<usize>() + round;
            if round + 1 == self.rounds {
                Status::Stopped(heard)
            } else {
                Status::Running(round + 1)
            }
        }
    }

    #[test]
    fn recycled_payloads_match_the_allocating_path() {
        let g = generators::grid(3, 3);
        let p = PortNumbering::consistent(&g);
        let plain = Simulator::new().run(&VecEcho { rounds: 4, recycle: false }, &g, &p).unwrap();
        let reused = Simulator::new().run(&VecEcho { rounds: 4, recycle: true }, &g, &p).unwrap();
        assert_eq!(plain.outputs(), reused.outputs());
        assert_eq!(plain.stats(), reused.stats());
        assert_eq!(plain.total_message_units(), reused.total_message_units());
    }

    /// `Vec`-bodied messages with *staggered* stopping (a node stops at
    /// round = its degree), so inbox slots go Data→Silent mid-run and
    /// the recycling override sees Silent slots, fresh slots, and
    /// recycled buffers across one execution.
    #[derive(Debug)]
    struct StaggeredVecEcho {
        recycle: bool,
    }

    impl VectorAlgorithm for StaggeredVecEcho {
        type State = (usize, usize, usize); // (round, degree, heard)
        type Msg = Vec<usize>;
        type Output = usize;

        fn init(&self, degree: usize) -> Status<(usize, usize, usize), usize> {
            if degree == 0 {
                Status::Stopped(0)
            } else {
                Status::Running((0, degree, 0))
            }
        }

        fn message(&self, &(round, ..): &(usize, usize, usize), port: usize) -> Vec<usize> {
            vec![round + 1; port + 2]
        }

        fn message_into(
            &self,
            state: &(usize, usize, usize),
            port: usize,
            slot: &mut Payload<Vec<usize>>,
        ) {
            if !self.recycle {
                *slot = Payload::Data(self.message(state, port));
                return;
            }
            match slot.data_mut() {
                Some(body) => {
                    body.clear();
                    body.resize(port + 2, state.0 + 1);
                }
                None => *slot = Payload::Data(self.message(state, port)),
            }
        }

        fn step(
            &self,
            &(round, degree, heard): &(usize, usize, usize),
            received: &[Payload<Vec<usize>>],
        ) -> Status<(usize, usize, usize), usize> {
            let heard =
                heard + received.iter().filter_map(Payload::data).flatten().sum::<usize>();
            if round + 1 >= degree {
                Status::Stopped(heard)
            } else {
                Status::Running((round + 1, degree, heard))
            }
        }
    }

    #[test]
    fn staggered_stops_recycle_like_fresh_allocation() {
        // Regression for the Data→Silent transition: once a neighbour
        // stops, its slots turn Silent, and any later recycling on
        // other routes must not be confused by what slots used to
        // hold. The recycling run must equal the allocating run
        // exactly — outputs, stop times, and message-unit accounting.
        for g in [generators::star(3), generators::grid(3, 3), generators::path(5)] {
            let p = PortNumbering::consistent(&g);
            let fresh =
                Simulator::new().run(&StaggeredVecEcho { recycle: false }, &g, &p).unwrap();
            let recycled =
                Simulator::new().run(&StaggeredVecEcho { recycle: true }, &g, &p).unwrap();
            assert_eq!(fresh.outputs(), recycled.outputs(), "{g}");
            assert_eq!(fresh.stats(), recycled.stats(), "{g}");
            assert_eq!(fresh.stop_times(), recycled.stop_times(), "{g}");
        }
    }

    use portnum_graph::Graph;

    #[test]
    fn empty_graph_runs() {
        let g = Graph::empty(0);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&CountRounds { k: 5 }, &g, &p).unwrap();
        assert_eq!(run.rounds(), 0);
        assert!(run.outputs().is_empty());
    }

    #[test]
    fn message_unit_accounting() {
        let g = generators::path(2);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&CountRounds { k: 2 }, &g, &p).unwrap();
        assert_eq!(run.total_message_units(), 4);
        assert_eq!(run.max_message_units(), 1);
    }
}
