//! Abstract message-size accounting.
//!
//! The paper's open question at the end of Section 5.4 concerns the *message
//! size* overhead of the simulation theorems. [`MessageSize`] assigns every
//! message an abstract size in "units" (scalars count 1, containers add
//! their contents plus 1), which the simulator aggregates per round so that
//! the bench harness can chart the growth of history-based simulations
//! (Theorems 8 and 9) against the `O(Δ)`-preamble simulation (Theorem 4).

use crate::multiset::Multiset;
use crate::payload::Payload;
use std::collections::{BTreeMap, BTreeSet};

/// Abstract size of a message in units.
pub trait MessageSize {
    /// The size of this value in abstract units (≥ 1 for scalars).
    fn size_units(&self) -> u64;
}

macro_rules! scalar_size {
    ($($t:ty),* $(,)?) => {
        $(impl MessageSize for $t {
            fn size_units(&self) -> u64 {
                1
            }
        })*
    };
}

scalar_size!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char, ());

impl MessageSize for String {
    fn size_units(&self) -> u64 {
        1 + self.len() as u64
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn size_units(&self) -> u64 {
        1 + self.iter().map(MessageSize::size_units).sum::<u64>()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn size_units(&self) -> u64 {
        1 + self.as_ref().map_or(0, MessageSize::size_units)
    }
}

impl<T: MessageSize> MessageSize for Box<T> {
    fn size_units(&self) -> u64 {
        (**self).size_units()
    }
}

impl<T: MessageSize + Ord> MessageSize for BTreeSet<T> {
    fn size_units(&self) -> u64 {
        1 + self.iter().map(MessageSize::size_units).sum::<u64>()
    }
}

impl<K: MessageSize + Ord, V: MessageSize> MessageSize for BTreeMap<K, V> {
    fn size_units(&self) -> u64 {
        1 + self.iter().map(|(k, v)| k.size_units() + v.size_units()).sum::<u64>()
    }
}

impl<T: MessageSize + Ord> MessageSize for Multiset<T> {
    fn size_units(&self) -> u64 {
        1 + self.counts().map(|(k, _)| k.size_units() + 1).sum::<u64>()
    }
}

impl<M: MessageSize> MessageSize for Payload<M> {
    fn size_units(&self) -> u64 {
        match self {
            Payload::Silent => 1,
            Payload::Data(m) => 1 + m.size_units(),
        }
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_units(&self) -> u64 {
        self.0.size_units() + self.1.size_units()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn size_units(&self) -> u64 {
        self.0.size_units() + self.1.size_units() + self.2.size_units()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize, D: MessageSize> MessageSize
    for (A, B, C, D)
{
    fn size_units(&self) -> u64 {
        self.0.size_units() + self.1.size_units() + self.2.size_units() + self.3.size_units()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_unit() {
        assert_eq!(5u32.size_units(), 1);
        assert_eq!(true.size_units(), 1);
        assert_eq!(().size_units(), 1);
    }

    #[test]
    fn containers_accumulate() {
        assert_eq!(vec![1u8, 2, 3].size_units(), 4);
        assert_eq!(Vec::<u8>::new().size_units(), 1);
        let nested = vec![vec![1u8], vec![2, 3]];
        assert_eq!(nested.size_units(), 1 + 2 + 3);
        assert_eq!(Some(7u8).size_units(), 2);
        assert_eq!(None::<u8>.size_units(), 1);
        assert_eq!("abc".to_string().size_units(), 4);
    }

    #[test]
    fn payload_and_multiset() {
        assert_eq!(Payload::<u8>::Silent.size_units(), 1);
        assert_eq!(Payload::Data(9u8).size_units(), 2);
        let m: Multiset<u8> = vec![1, 1, 2].into();
        assert_eq!(m.size_units(), 1 + 2 + 2);
    }

    #[test]
    fn tuples_sum() {
        assert_eq!((1u8, 2u8).size_units(), 2);
        assert_eq!((1u8, 2u8, vec![1u8]).size_units(), 4);
        assert_eq!((1u8, 2u8, 3u8, 4u8).size_units(), 4);
    }
}
