//! Property-based tests for the machine crate: adapter coherence and
//! simulator determinism.

use portnum_graph::{Graph, PortNumbering};
use portnum_machine::adapters::{MbAsBroadcast, MbAsVector, SbAsMb, SbAsVector, SetAsMultiset};
use portnum_machine::{
    check, BroadcastAlgorithm, MbAlgorithm, Multiset, Payload, SbAlgorithm, SetAlgorithm,
    Simulator, Status, VectorAlgorithm,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=8).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut b = Graph::builder(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if mask[idx] {
                        b.edge(u, v).expect("pairs distinct");
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

/// A parameterised SB algorithm: gossip degree sets for `rounds` rounds,
/// output the set of degrees seen.
#[derive(Debug, Clone, Copy)]
struct Gossip {
    rounds: usize,
}

impl SbAlgorithm for Gossip {
    type State = (usize, BTreeSet<usize>);
    type Msg = BTreeSet<usize>;
    type Output = BTreeSet<usize>;

    fn init(&self, degree: usize) -> Status<(usize, BTreeSet<usize>), BTreeSet<usize>> {
        let s: BTreeSet<usize> = [degree].into();
        if self.rounds == 0 {
            Status::Stopped(s)
        } else {
            Status::Running((0, s))
        }
    }

    fn broadcast(&self, (_, s): &(usize, BTreeSet<usize>)) -> BTreeSet<usize> {
        s.clone()
    }

    fn step(
        &self,
        (round, s): &(usize, BTreeSet<usize>),
        received: &BTreeSet<Payload<BTreeSet<usize>>>,
    ) -> Status<(usize, BTreeSet<usize>), BTreeSet<usize>> {
        let mut s = s.clone();
        for p in received {
            if let Payload::Data(t) = p {
                s.extend(t.iter().copied());
            }
        }
        if round + 1 == self.rounds {
            Status::Stopped(s)
        } else {
            Status::Running((round + 1, s))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_is_deterministic(g in arb_graph(), rounds in 0usize..4, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let algo = SbAsVector(Gossip { rounds });
        let sim = Simulator::new();
        let a = sim.run(&algo, &g, &p).unwrap();
        let b = sim.run(&algo, &g, &p).unwrap();
        prop_assert_eq!(a.outputs(), b.outputs());
        prop_assert_eq!(a.rounds(), b.rounds());
        prop_assert_eq!(a.rounds(), rounds);
    }

    #[test]
    fn sb_output_is_numbering_independent(g in arb_graph(), s1 in any::<u64>(), s2 in any::<u64>()) {
        // SB algorithms cannot see the port numbering at all.
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(s1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(s2);
        let p1 = PortNumbering::random(&g, &mut r1);
        let p2 = PortNumbering::random(&g, &mut r2);
        let sim = Simulator::new();
        let a = sim.run(&SbAsVector(Gossip { rounds: 2 }), &g, &p1).unwrap();
        let b = sim.run(&SbAsVector(Gossip { rounds: 2 }), &g, &p2).unwrap();
        prop_assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn adapter_tower_agrees(g in arb_graph(), seed in any::<u64>()) {
        // SB → Vector directly, or SB → MB → Vector: identical behaviour.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let sim = Simulator::new();
        let direct = sim.run(&SbAsVector(Gossip { rounds: 2 }), &g, &p).unwrap();
        let tower = sim.run(&MbAsVector(SbAsMb(Gossip { rounds: 2 })), &g, &p).unwrap();
        prop_assert_eq!(direct.outputs(), tower.outputs());
        prop_assert_eq!(direct.rounds(), tower.rounds());
    }

    #[test]
    fn semantic_class_checks_validate_adapters(g in arb_graph(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let algo = SbAsVector(Gossip { rounds: 2 });
        let obs = check::observe(&algo, &g, &p, 8);
        prop_assert!(check::is_order_invariant(&algo, &obs));
        prop_assert!(check::is_multiplicity_invariant(&algo, &obs));
        prop_assert!(check::is_broadcast(&algo, &obs, g.max_degree()));
    }
}

/// A Set algorithm whose Multiset embedding must behave identically.
#[derive(Debug, Clone, Copy)]
struct PortsSeen;

impl SetAlgorithm for PortsSeen {
    type State = ();
    type Msg = usize;
    type Output = BTreeSet<usize>;

    fn init(&self, _d: usize) -> Status<(), BTreeSet<usize>> {
        Status::Running(())
    }
    fn message(&self, _: &(), port: usize) -> usize {
        port
    }
    fn step(&self, _: &(), received: &BTreeSet<Payload<usize>>) -> Status<(), BTreeSet<usize>> {
        Status::Stopped(received.iter().filter_map(Payload::data).copied().collect())
    }
}

#[test]
fn set_as_multiset_embedding_is_faithful() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let sim = Simulator::new();
    for _ in 0..10 {
        let g = portnum_graph::generators::gnp(8, 0.4, &mut rng);
        let p = PortNumbering::random(&g, &mut rng);
        let direct = sim.run(&portnum_machine::adapters::SetAsVector(PortsSeen), &g, &p).unwrap();
        let via_multiset = sim
            .run(&portnum_machine::adapters::MultisetAsVector(SetAsMultiset(PortsSeen)), &g, &p)
            .unwrap();
        assert_eq!(direct.outputs(), via_multiset.outputs());
    }
}

/// An MB algorithm embedded as a Broadcast algorithm must agree.
#[derive(Debug, Clone, Copy)]
struct CountTrue;

impl MbAlgorithm for CountTrue {
    type State = usize;
    type Msg = bool;
    type Output = usize;

    fn init(&self, degree: usize) -> Status<usize, usize> {
        Status::Running(degree)
    }
    fn broadcast(&self, state: &usize) -> bool {
        *state >= 2
    }
    fn step(&self, _: &usize, received: &Multiset<Payload<bool>>) -> Status<usize, usize> {
        Status::Stopped(received.count(&Payload::Data(true)))
    }
}

#[test]
fn mb_as_broadcast_embedding_is_faithful() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let sim = Simulator::new();
    for _ in 0..10 {
        let g = portnum_graph::generators::gnp(8, 0.4, &mut rng);
        let p = PortNumbering::random(&g, &mut rng);
        let direct = sim.run(&MbAsVector(CountTrue), &g, &p).unwrap();
        let via_vb = sim
            .run(
                &portnum_machine::adapters::BroadcastAsVector(MbAsBroadcast(CountTrue)),
                &g,
                &p,
            )
            .unwrap();
        assert_eq!(direct.outputs(), via_vb.outputs());
    }
}

// Silence unused-trait warnings in configurations where only some tests run.
#[allow(dead_code)]
fn _markers<B: BroadcastAlgorithm, V: VectorAlgorithm>() {}
