//! Admission control: price a request before running it, bound it
//! while it runs.
//!
//! Pricing uses the engine's own measured cost model — the per-op
//! work-words estimate the Auto execution gate compares against the
//! pool's calibrated
//! [`dispatch_cost_ns`](portnum_graph::pool::WorkerPool::dispatch_cost_ns)
//! — via [`ModelChecker::estimate_work`], which charges only the
//! instructions the batch would actually evaluate (cached subresults
//! are free). Requests priced over [`ServeConfig::max_cost`] are shed
//! with an `Overloaded` error frame before any work happens; admitted
//! requests run under an [`ExecControl`] carrying the configured
//! deadline, the same cost cap as an in-flight work budget, and a
//! fresh [`CancelToken`] — so a mis-priced request dies with a typed
//! interrupt, never a torn cache (the checker's whole-or-nothing
//! commit guarantees the cache part).
//!
//! [`ModelChecker::estimate_work`]: portnum_logic::ModelChecker::estimate_work

use crate::config::ServeConfig;
use portnum_graph::partition::parallel_floor_words;
use portnum_graph::pool::WorkerPool;
use portnum_graph::resilience::{CancelToken, Deadline, ExecControl};
use std::time::Duration;

/// The verdict on a priced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run it (under [`control_for`]'s `ExecControl`).
    Admit,
    /// Shed it: the estimate exceeds the configured cost cap.
    Shed {
        /// The offending estimate, in work-words.
        estimate: u64,
        /// The cap it broke.
        cap: u64,
    },
}

/// Prices `estimate` (work-words, from
/// [`ModelChecker::estimate_work`](portnum_logic::ModelChecker::estimate_work))
/// against the configured cap.
#[must_use]
pub fn admit(cfg: &ServeConfig, estimate: u64) -> Admission {
    match cfg.max_cost {
        Some(cap) if estimate > cap => Admission::Shed { estimate, cap },
        _ => Admission::Admit,
    }
}

/// Approximate cost of an admitted request in nanoseconds: the
/// work-words estimate at the engine's ~1 word/ns throughput anchor,
/// plus one measured pool dispatch when the estimate clears the Auto
/// gate's parallel floor (the request will pay the coordination price
/// exactly when the executor fans out). Surfaced in shed messages and
/// stats so operators see the same currency the gate prices with.
#[must_use]
pub fn estimated_cost_ns(estimate: u64) -> u64 {
    let pool = WorkerPool::global();
    let dispatch = if estimate as usize >= parallel_floor_words() {
        pool.dispatch_cost_ns()
    } else {
        0
    };
    estimate.saturating_add(dispatch)
}

/// The per-request [`ExecControl`]: configured deadline, the cost cap
/// doubling as the in-flight touched-work budget, and a fresh
/// [`CancelToken`] (returned so the connection layer — and the chaos
/// tests — can cancel mid-request).
#[must_use]
pub fn control_for(cfg: &ServeConfig) -> (ExecControl, CancelToken) {
    let token = CancelToken::new();
    let mut ctl = ExecControl::with_cancel(token.clone());
    if let Some(ms) = cfg.deadline_ms {
        ctl.deadline = Some(Deadline::after(Duration::from_millis(ms)));
    }
    ctl.budget.max_touched_words = cfg.max_cost.map(|c| usize::try_from(c).unwrap_or(usize::MAX));
    (ctl, token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_cap_sheds_and_bounds() {
        let mut cfg = ServeConfig { max_cost: Some(100), ..ServeConfig::default() };
        assert_eq!(admit(&cfg, 100), Admission::Admit);
        assert_eq!(admit(&cfg, 101), Admission::Shed { estimate: 101, cap: 100 });
        let (ctl, _token) = control_for(&cfg);
        assert_eq!(ctl.budget.max_touched_words, Some(100));
        cfg.max_cost = None;
        assert_eq!(admit(&cfg, u64::MAX), Admission::Admit);
    }

    #[test]
    fn deadline_knob_reaches_the_control() {
        let cfg = ServeConfig { deadline_ms: Some(5), ..ServeConfig::default() };
        let (ctl, token) = control_for(&cfg);
        assert!(ctl.deadline.is_some());
        assert!(ctl.check().is_ok());
        token.cancel();
        assert!(ctl.check().is_err());
    }
}
