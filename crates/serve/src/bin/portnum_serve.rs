//! The `portnum-serve` binary: bind, print the address, serve until
//! killed. Configuration comes entirely from the `PORTNUM_SERVE_*`
//! environment knobs (see `ServeConfig::from_env`); defaults bind an
//! ephemeral local port, so the printed address is the one to dial.

use portnum_serve::{ServeConfig, Server};

fn main() {
    let cfg = ServeConfig::from_env();
    let server = Server::start(cfg).expect("binding the serve address");
    println!("portnum-serve listening on {}", server.addr());
    // The accept loop and the shards do all the work; this thread just
    // keeps the process (and the Server handle) alive.
    loop {
        std::thread::park();
    }
}
