//! The serving cache: resident models plus their detached checker
//! state, with the byte accounting the LRU eviction policy runs on.
//!
//! Between requests a shard holds each model as a [`ModelEntry`]: the
//! [`Kripke`] itself and the [`CheckerCache`] detached from the last
//! request's [`ModelChecker`](portnum_logic::ModelChecker) — truth
//! vectors, lowering state, and the bisimulation quotient, all of
//! which the detach → resume handshake carries across requests (and
//! across deltas, repaired rather than rebuilt). The entry's footprint
//! is the model's CSR estimate plus the cache's resident words; the
//! shard keeps the sum of footprints under its budget slice by
//! evicting least-recently-used entries wholesale, or — when only the
//! pinned entry remains — shedding its checker cache while keeping the
//! model.

use portnum_logic::{CheckerCache, Kripke};

/// One resident model and its warm serving state.
#[derive(Debug)]
pub(crate) struct ModelEntry {
    /// The model, mutated in place by deltas.
    pub model: Kripke,
    /// Detached checker state; `None` right after a load, a trim, or a
    /// request that panicked mid-flight (cold but consistent — the
    /// next request rebuilds it).
    pub cache: Option<CheckerCache>,
    /// Footprint at last accounting, in bytes ([`entry_bytes`]).
    pub bytes: usize,
    /// Shard tick of the last request touching this entry (the LRU
    /// recency stamp).
    pub last_used: u64,
}

/// Estimated resident bytes of the model itself: CSR targets (`u32`
/// each), per-relation offset arrays, and the degree valuation.
pub(crate) fn model_bytes(model: &Kripke) -> usize {
    let n = model.len();
    let words = std::mem::size_of::<usize>();
    model.relation_entry_count() * 4 + model.relation_count() * (n + 1) * words + n * words
}

/// The entry's full footprint: model plus cached truth-vector words.
pub(crate) fn entry_bytes(entry: &ModelEntry) -> usize {
    model_bytes(&entry.model) + entry.cache.as_ref().map_or(0, |c| c.cached_words() * 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ModelSpec;
    use portnum_logic::{Formula, ModalIndex, ModelChecker};

    #[test]
    fn footprint_grows_with_the_checker_cache() {
        let model = ModelSpec::Path { n: 64 }.build().unwrap();
        let mut entry = ModelEntry { model, cache: None, bytes: 0, last_used: 0 };
        let cold = entry_bytes(&entry);
        assert!(cold >= 64 * 4, "CSR entries must be priced in");
        let mut checker = ModelChecker::new(&entry.model);
        checker.check(&Formula::diamond(ModalIndex::Any, &Formula::prop(1))).unwrap();
        let cache = checker.detach();
        assert!(cache.cached_words() > 0);
        entry.cache = Some(cache);
        assert!(entry_bytes(&entry) > cold);
    }
}
