//! A blocking client for the serving protocol: one request in flight
//! per connection, typed accessors per request kind.

use crate::framing::{read_frame, write_frame, FrameError};
use crate::protocol::{
    DeltaSpec, ErrorFrame, ModelSpec, ProtocolError, Request, Response, ServerStats,
};
use portnum_logic::Formula;
use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server closed the connection between frames.
    Closed,
    /// The server's frame did not decode.
    Protocol(ProtocolError),
    /// The server answered with an error frame.
    Server(ErrorFrame),
    /// The server answered with the wrong response kind for the
    /// request (`&'static str` names what was expected).
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Protocol(e) => write!(f, "undecodable server frame: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(want) => write!(f, "expected a {want} response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Protocol(e) => ClientError::Protocol(e),
        }
    }
}

/// The batch answer of [`Client::check`]: packed truth vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truths {
    /// World count (valid bit-length of every vector).
    pub worlds: u64,
    /// One vector of `u64` words per requested formula, in order.
    pub vectors: Vec<Vec<u64>>,
}

impl Truths {
    /// Whether formula `f` holds at world `v`.
    #[must_use]
    pub fn holds(&self, f: usize, v: usize) -> bool {
        debug_assert!((v as u64) < self.worlds);
        (self.vectors[f][v / 64] >> (v % 64)) & 1 == 1
    }
}

/// One connection to a server; requests run strictly in sequence.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// Transport and decode failures; an [`ErrorFrame`] answer is
    /// returned as `Ok(Response::Error(..))` here — the typed
    /// accessors below lift it into [`ClientError::Server`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        match read_frame(&mut self.reader)? {
            Some(body) => Ok(Response::decode(&body)?),
            None => Err(ClientError::Closed),
        }
    }

    fn expect<T>(
        &mut self,
        req: &Request,
        want: &'static str,
        pick: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ClientError> {
        match self.call(req)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => pick(resp).ok_or(ClientError::Unexpected(want)),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`ClientError::Server`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Ping, "Pong", |r| matches!(r, Response::Pong).then_some(()))
    }

    /// Loads (or replaces) `model` from `spec`; returns
    /// `(worlds, version)`.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`ClientError::Server`].
    pub fn load(&mut self, model: u64, spec: &ModelSpec) -> Result<(u64, u64), ClientError> {
        self.expect(
            &Request::Load { model, spec: spec.clone() },
            "Loaded",
            |r| match r {
                Response::Loaded { worlds, version, .. } => Some((worlds, version)),
                _ => None,
            },
        )
    }

    /// Evicts `model`; returns whether it was loaded.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`ClientError::Server`].
    pub fn evict(&mut self, model: u64) -> Result<bool, ClientError> {
        self.expect(&Request::Evict { model }, "Evicted", |r| match r {
            Response::Evicted { existed, .. } => Some(existed),
            _ => None,
        })
    }

    /// Checks a batch of formulas against `model`, coalesced
    /// server-side into shared-cache suite evaluation.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`ClientError::Server`].
    pub fn check(&mut self, model: u64, formulas: &[Formula]) -> Result<Truths, ClientError> {
        self.expect(
            &Request::Check { model, formulas: formulas.to_vec() },
            "Truths",
            |r| match r {
                Response::Truths { worlds, vectors } => Some(Truths { worlds, vectors }),
                _ => None,
            },
        )
    }

    /// Applies `delta` to `model`; returns
    /// `(new version, touched world count)`.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`ClientError::Server`].
    pub fn apply_delta(
        &mut self,
        model: u64,
        delta: &DeltaSpec,
    ) -> Result<(u64, u64), ClientError> {
        self.expect(
            &Request::Delta { model, delta: delta.clone() },
            "DeltaApplied",
            |r| match r {
                Response::DeltaApplied { version, touched, .. } => Some((version, touched)),
                _ => None,
            },
        )
    }

    /// Server-wide statistics.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`ClientError::Server`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.expect(&Request::Stats, "Stats", |r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
    }
}
