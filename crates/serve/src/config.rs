//! Server configuration and its `PORTNUM_SERVE_*` environment knobs.

use std::env;

/// Everything a [`Server`](crate::server::Server) needs to start.
///
/// [`ServeConfig::from_env`] is the production entry point; tests build
/// from it (so CI knob legs reach them) and override fields.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`PORTNUM_SERVE_ADDR`). Port 0 picks a free port —
    /// read it back from [`Server::addr`](crate::server::Server::addr).
    pub addr: String,
    /// Shard count (`PORTNUM_SERVE_SHARDS`, ≥ 1). A model id is pinned
    /// to shard `id % shards` for its lifetime.
    pub shards: usize,
    /// Serving-cache memory budget in bytes across the whole server
    /// (`PORTNUM_SERVE_MEM_BYTES`), split evenly over the shards.
    /// Models plus their checker caches are LRU-evicted to stay under
    /// it; a single model over a shard's slice is rejected at load.
    pub mem_budget: usize,
    /// Admission cost cap per check request in the engine's work-words
    /// currency (`PORTNUM_SERVE_MAX_COST`; absent = admit everything).
    /// Priced *before* execution by
    /// [`ModelChecker::estimate_work`](portnum_logic::ModelChecker::estimate_work);
    /// the same figure bounds the in-flight work budget, so a
    /// mis-estimate still trips a typed interrupt instead of running
    /// away.
    pub max_cost: Option<u64>,
    /// Per-request wall-clock deadline in milliseconds
    /// (`PORTNUM_SERVE_DEADLINE_MS`; absent = none).
    pub deadline_ms: Option<u64>,
    /// Bounded depth of each shard's request queue
    /// (`PORTNUM_SERVE_QUEUE`, ≥ 1). A full queue sheds with an
    /// `Overloaded` error frame instead of stalling the connection.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            mem_budget: 256 << 20,
            max_cost: None,
            deadline_ms: None,
            queue_cap: 128,
        }
    }
}

impl ServeConfig {
    /// Reads every `PORTNUM_SERVE_*` knob, falling back to
    /// [`Default`]. Like every other `PORTNUM_*` knob in the workspace
    /// this parses-or-panics: a malformed value fails the process at
    /// startup instead of silently serving with defaults (the
    /// `serve_knobs_parse_or_panic` test forces the parse in every CI
    /// leg).
    ///
    /// # Panics
    ///
    /// On any set-but-malformed knob, or a zero shard/queue count.
    #[must_use]
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Ok(v) = env::var("PORTNUM_SERVE_ADDR") {
            cfg.addr = v;
        }
        if let Some(v) = parse_knob::<usize>("PORTNUM_SERVE_SHARDS") {
            assert!(v >= 1, "PORTNUM_SERVE_SHARDS must be >= 1, got {v}");
            cfg.shards = v;
        }
        if let Some(v) = parse_knob::<usize>("PORTNUM_SERVE_MEM_BYTES") {
            cfg.mem_budget = v;
        }
        if let Some(v) = parse_knob::<u64>("PORTNUM_SERVE_MAX_COST") {
            cfg.max_cost = Some(v);
        }
        if let Some(v) = parse_knob::<u64>("PORTNUM_SERVE_DEADLINE_MS") {
            cfg.deadline_ms = Some(v);
        }
        if let Some(v) = parse_knob::<usize>("PORTNUM_SERVE_QUEUE") {
            assert!(v >= 1, "PORTNUM_SERVE_QUEUE must be >= 1, got {v}");
            cfg.queue_cap = v;
        }
        cfg
    }

    /// The memory budget of one shard: the configured total split
    /// evenly (never below one byte, so the eviction loop terminates).
    #[must_use]
    pub fn shard_budget(&self) -> usize {
        (self.mem_budget / self.shards.max(1)).max(1)
    }
}

fn parse_knob<T: std::str::FromStr>(name: &str) -> Option<T> {
    env::var(name).ok().map(|v| {
        v.parse::<T>().unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forces the knob parse under whatever environment CI exported —
    /// a malformed matrix entry fails here instead of silently testing
    /// the defaults (same contract as the engine knobs).
    #[test]
    fn serve_knobs_parse_or_panic() {
        let cfg = ServeConfig::from_env();
        assert!(cfg.shards >= 1);
        assert!(cfg.queue_cap >= 1);
        assert!(cfg.shard_budget() >= 1);
    }
}
