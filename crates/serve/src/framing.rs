//! Length-prefixed framing over any byte stream.
//!
//! A frame is a `u32` little-endian body length followed by the body
//! ([`protocol`](crate::protocol) encodes the bodies). The prefix is
//! capped at [`MAX_FRAME_LEN`] *before* the body is allocated: a
//! corrupt or hostile prefix costs four bytes of reading, not
//! gigabytes of memory — and since a corrupt prefix destroys the only
//! frame boundary the stream has, the connection layer closes after
//! reporting it. A malformed *body* by contrast is fully framed: the
//! decoder rejects it without consuming the neighbours, so the stream
//! never desynchronises.

use crate::protocol::{ProtocolError, MAX_FRAME_LEN};
use std::fmt;
use std::io::{self, Read, Write};

/// A framing-layer failure: either the transport died or the peer sent
/// an unusable length prefix.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes mid-frame EOF, surfaced
    /// as [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
    /// The length prefix was over the cap.
    Protocol(ProtocolError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Protocol(e) => write!(f, "framing error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + body) and flushes.
///
/// # Errors
///
/// Propagates transport errors.
///
/// # Panics
///
/// Panics if `body` exceeds [`MAX_FRAME_LEN`] — encoders never produce
/// such bodies; a caller that does holds a bug, not a peer.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    assert!(body.len() <= MAX_FRAME_LEN, "outgoing frame over the length cap");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); EOF *inside* a frame is an
/// [`io::ErrorKind::UnexpectedEof`] transport error.
///
/// # Errors
///
/// [`FrameError::Protocol`] with [`ProtocolError::FrameTooLarge`] for
/// an oversized prefix, [`FrameError::Io`] for transport failures.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Protocol(ProtocolError::FrameTooLarge(len as u64)));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"omega").unwrap();
        let mut rd = wire.as_slice();
        assert_eq!(read_frame(&mut rd).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut rd).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut rd).unwrap().unwrap(), b"omega");
        assert!(read_frame(&mut rd).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_typed_not_allocated() {
        let wire = u32::MAX.to_le_bytes();
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Protocol(ProtocolError::FrameTooLarge(len))) => {
                assert_eq!(len, u64::from(u32::MAX));
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_a_transport_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        wire.truncate(wire.len() - 2);
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }
}
