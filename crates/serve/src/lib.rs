//! Model-checking as a service: a sharded batch server in front of the
//! `portnum-logic` engine.
//!
//! The paper's setting — many weak nodes querying properties of a
//! shared structure — maps onto long-lived [`Kripke`] models served
//! under concurrent traffic. This crate is the layer that makes every
//! engine capability user-visible as throughput:
//!
//! - **Protocol** ([`protocol`], [`framing`]): a length-prefixed
//!   binary protocol over plain TCP (the build environment is offline;
//!   no HTTP stack). Frames decode totally — malformed input yields
//!   typed errors, never a panic or a desynchronised stream.
//! - **Shards** ([`server`], `shard`): N worker threads own disjoint
//!   model-id slices; per-model requests serialise on their shard, so
//!   a model's op sequence is well-defined even under concurrent
//!   clients (the differential suite pins responses bit-identical to a
//!   single-threaded [`ModelChecker`] replaying that sequence).
//! - **Batching**: a check request carries a whole formula batch,
//!   coalesced server-side through
//!   [`ModelChecker::check_suite_controlled`] — shared subformulas are
//!   computed once against the model's long-lived cache.
//! - **Admission control** (`admission`): requests are priced with the
//!   engine's measured cost model before running, shed when over the
//!   configured cap or when the shard queue is full, and bounded
//!   in-flight by deadline + budget
//!   ([`ExecControl`](portnum_graph::resilience::ExecControl)) with
//!   typed interrupts mapped to error frames.
//! - **Serving cache** (`cache`): models plus their detached
//!   [`CheckerCache`]s (truth vectors, quotients) are LRU-evicted
//!   against a configurable memory budget.
//!
//! See `ARCHITECTURE.md` ("Serving layer") for the protocol table and
//! the `PORTNUM_SERVE_*` knobs, and the crate's tests for the
//! differential, proptest, chaos, and soak suites.
//!
//! [`Kripke`]: portnum_logic::Kripke
//! [`ModelChecker`]: portnum_logic::ModelChecker
//! [`ModelChecker::check_suite_controlled`]: portnum_logic::ModelChecker::check_suite_controlled
//! [`CheckerCache`]: portnum_logic::CheckerCache

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod cache;
pub mod client;
pub mod config;
pub mod framing;
pub mod protocol;
pub mod server;
mod shard;

pub use client::{Client, ClientError, Truths};
pub use config::ServeConfig;
pub use protocol::{
    DeltaSpec, ErrorCode, ErrorFrame, ModelSpec, ProtocolError, Request, Response, ServerStats,
};
pub use server::Server;

/// Test-only observability hooks (used by the chaos suite to cancel a
/// request mid-batch); not part of the serving API.
#[doc(hidden)]
pub mod testing {
    use portnum_graph::resilience::CancelToken;
    use std::sync::Mutex;

    static LATEST: Mutex<Option<CancelToken>> = Mutex::new(None);

    /// Records the token of the request about to execute.
    pub(crate) fn publish_cancel_token(token: CancelToken) {
        *LATEST.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(token);
    }

    /// The most recently published per-request cancel token.
    #[must_use]
    pub fn latest_cancel_token() -> Option<CancelToken> {
        LATEST.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}
