//! Typed request/response frames and their binary encoding.
//!
//! Every frame travels as a [length-prefixed body](crate::framing); the
//! body's first byte is the opcode, the rest is the frame's fields in
//! little-endian fixed-width integers. Strings are UTF-8 with a `u32`
//! byte-length prefix; formulas travel as their [`Display`] rendering
//! (the grammar [`parse`] round-trips bit-exactly, pinned by the parser
//! proptests). Decoding is total: any malformed body yields a typed
//! [`ProtocolError`], never a panic, and never consumes bytes beyond
//! its own frame — the stream stays in sync.
//!
//! [`Display`]: std::fmt::Display

use portnum_graph::generators;
use portnum_logic::{
    parse, Formula, Kripke, KripkeBuilder, LogicError, ModalIndex, ModelDelta, ModelVariant,
};
use rand::{rngs::StdRng, SeedableRng};
use std::fmt;

/// Frame bodies above this many bytes are rejected before allocation:
/// an oversized length prefix is a [`ProtocolError::FrameTooLarge`],
/// and the connection closes (past a corrupt prefix there is no
/// trustworthy frame boundary left to resynchronise on).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// What went wrong while decoding a frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The body ended before the fields it promised.
    Truncated,
    /// The body carried bytes past its last field.
    TrailingBytes,
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(u64),
    /// The opcode byte matches no known frame type.
    UnknownOpcode(u8),
    /// An enum tag byte was out of range for `what`.
    BadTag {
        /// Which tagged field was malformed.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A formula string failed to parse.
    BadFormula(String),
    /// A numeric field carried an unusable value (`what` says which).
    BadValue(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame body truncated"),
            ProtocolError::TrailingBytes => write!(f, "frame body has trailing bytes"),
            ProtocolError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtocolError::BadTag { what, tag } => write!(f, "bad {what} tag 0x{tag:02x}"),
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::BadFormula(msg) => write!(f, "unparseable formula: {msg}"),
            ProtocolError::BadValue(what) => write!(f, "unusable value for {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// How a [`Request::Load`] describes the model to construct. All three
/// shapes stream their edges through [`KripkeBuilder`] server-side.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Explicit relations: the general shape, and the one
    /// [`ModelSpec::from_model`] produces.
    Edges {
        /// Which `K_{±,±}` variant the relations belong to.
        variant: ModelVariant,
        /// World count.
        n: u64,
        /// Explicit degree valuation; derived from the edge streams
        /// when absent.
        degrees: Option<Vec<u64>>,
        /// One `(modality, edge list)` pair per relation.
        relations: Vec<(ModalIndex, Vec<(u32, u32)>)>,
    },
    /// The `n`-world path graph as `K₋,₋`.
    Path {
        /// World count.
        n: u64,
    },
    /// An Erdős–Rényi `G(n, p)` graph as `K₋,₋`, generated server-side
    /// from `seed` (deterministic: equal specs build equal models).
    Gnp {
        /// World count.
        n: u64,
        /// Edge probability as raw `f64` bits (bit-exact on the wire).
        p_bits: u64,
        /// Generator seed.
        seed: u64,
    },
}

impl ModelSpec {
    /// A [`ModelSpec::Gnp`] from an `f64` probability.
    #[must_use]
    pub fn gnp(n: u64, p: f64, seed: u64) -> ModelSpec {
        ModelSpec::Gnp { n, p_bits: p.to_bits(), seed }
    }

    /// Snapshots `model` as an [`ModelSpec::Edges`] spec — loading it
    /// rebuilds a model with identical relations, degrees, and variant
    /// (at version 0).
    #[must_use]
    pub fn from_model(model: &Kripke) -> ModelSpec {
        let n = model.len();
        let relations = (0..model.relation_count())
            .map(|r| {
                let edges = (0..n)
                    .flat_map(|v| {
                        model.successors_dense(r, v).iter().map(move |&w| (v as u32, w))
                    })
                    .collect();
                (model.relation_index(r), edges)
            })
            .collect();
        ModelSpec::Edges {
            variant: model.variant(),
            n: n as u64,
            degrees: Some(model.degrees().iter().map(|&d| d as u64).collect()),
            relations,
        }
    }

    /// Constructs the model, streaming every relation through
    /// [`KripkeBuilder`].
    ///
    /// # Errors
    ///
    /// Whatever [`KripkeBuilder::build`] reports (family mismatches,
    /// out-of-range worlds or degree lists).
    pub fn build(&self) -> Result<Kripke, LogicError> {
        match self {
            ModelSpec::Edges { variant, n, degrees, relations } => {
                let mut b = KripkeBuilder::new(*variant, usize::try_from(*n).unwrap_or(usize::MAX));
                for (index, edges) in relations {
                    b = b.relation(*index, move || edges.iter().copied());
                }
                b = match degrees {
                    Some(d) => b.degrees(d.iter().map(|&x| x as usize).collect()),
                    None => b.degrees_from_streams(),
                };
                b.build()
            }
            ModelSpec::Path { n } => {
                build_mm(&generators::path(usize::try_from(*n).unwrap_or(usize::MAX)))
            }
            ModelSpec::Gnp { n, p_bits, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let g = generators::gnp(
                    usize::try_from(*n).unwrap_or(usize::MAX),
                    f64::from_bits(*p_bits),
                    &mut rng,
                );
                build_mm(&g)
            }
        }
    }
}

/// Streams an undirected graph's adjacency (both directions) through
/// the builder as the single `K₋,₋` relation.
fn build_mm(g: &portnum_graph::Graph) -> Result<Kripke, LogicError> {
    KripkeBuilder::new(ModelVariant::MinusMinus, g.len())
        .relation(ModalIndex::Any, || {
            (0..g.len()).flat_map(|v| g.neighbors(v).iter().map(move |&w| (v as u32, w as u32)))
        })
        .degrees_from_streams()
        .build()
}

/// A model edit, mirrored field-for-field from [`ModelDelta`]'s builder
/// calls so it can travel the wire ([`ModelDelta`]'s internals are
/// private).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSpec {
    /// Edges to add, as `(modality, v, w)`.
    pub add: Vec<(ModalIndex, u32, u32)>,
    /// Edges to remove, as `(modality, v, w)`.
    pub remove: Vec<(ModalIndex, u32, u32)>,
    /// Valuation overrides, as `(world, degree)`.
    pub valuation: Vec<(u32, u64)>,
    /// Worlds to crash (drop every incident edge).
    pub crash: Vec<u32>,
}

impl DeltaSpec {
    /// Replays the recorded edits into a [`ModelDelta`].
    #[must_use]
    pub fn to_delta(&self) -> ModelDelta {
        let mut delta = ModelDelta::new();
        for &(index, v, w) in &self.add {
            delta.add_edge(index, v, w);
        }
        for &(index, v, w) in &self.remove {
            delta.remove_edge(index, v, w);
        }
        for &(v, d) in &self.valuation {
            delta.set_valuation(v, usize::try_from(d).unwrap_or(usize::MAX));
        }
        for &v in &self.crash {
            delta.crash_world(v);
        }
        delta
    }

    /// Total recorded edits.
    #[must_use]
    pub fn edit_count(&self) -> usize {
        self.add.len() + self.remove.len() + self.valuation.len() + self.crash.len()
    }
}

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`] in the
    /// connection thread (never routed to a shard).
    Ping,
    /// Construct (or replace) the model stored under `model`.
    Load {
        /// Model id (also the shard routing key).
        model: u64,
        /// What to build.
        spec: ModelSpec,
    },
    /// Drop the model under `model`, caches included.
    Evict {
        /// Model id.
        model: u64,
    },
    /// Check a batch of formulas against one model. The whole batch is
    /// coalesced into shared-cache suite evaluation server-side.
    Check {
        /// Model id.
        model: u64,
        /// The batch, answered in order.
        formulas: Vec<Formula>,
    },
    /// Apply a [`DeltaSpec`] to the stored model and repair its caches.
    Delta {
        /// Model id.
        model: u64,
        /// The edit batch (applied atomically: validation failures
        /// leave the model untouched).
        delta: DeltaSpec,
    },
    /// Server-wide statistics (aggregated over every shard).
    Stats,
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The model was constructed and stored.
    Loaded {
        /// Model id.
        model: u64,
        /// World count of the stored model.
        worlds: u64,
        /// Its [`Kripke::version`] stamp (0 for a fresh build).
        version: u64,
    },
    /// Answer to [`Request::Evict`].
    Evicted {
        /// Model id.
        model: u64,
        /// Whether the model was loaded.
        existed: bool,
    },
    /// Answer to [`Request::Check`]: one truth vector per formula, in
    /// request order, as raw `u64` words (`worlds` bits are valid).
    Truths {
        /// World count (the valid bit-length of every vector).
        worlds: u64,
        /// The packed truth vectors.
        vectors: Vec<Vec<u64>>,
    },
    /// The delta was applied and the caches repaired.
    DeltaApplied {
        /// Model id.
        model: u64,
        /// The model's new [`Kripke::version`] stamp.
        version: u64,
        /// Worlds the delta touched.
        touched: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Any failure: the request was not (fully) served.
    Error(ErrorFrame),
}

/// Machine-readable failure class of an [`ErrorFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame itself was malformed (see [`ProtocolError`]).
    Protocol,
    /// The request named a model id with nothing loaded under it.
    NoSuchModel,
    /// The engine rejected the request
    /// ([`LogicError`], validation failures included).
    Logic,
    /// The request's [`CancelToken`] tripped mid-execution.
    ///
    /// [`CancelToken`]: portnum_graph::resilience::CancelToken
    Cancelled,
    /// The per-request deadline passed mid-execution.
    DeadlineExceeded,
    /// The per-request work budget tripped mid-execution.
    BudgetExceeded,
    /// Admission control shed the request (estimated cost over the
    /// cap, shard queue full, or model over the memory budget).
    Overloaded,
    /// The server failed internally (e.g. a shard worker panicked);
    /// the connection and the shard survive.
    Internal,
}

/// The payload of [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Aggregated server statistics ([`Response::Stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Configured shard count.
    pub shards: u64,
    /// Models currently resident, across all shards.
    pub models: u64,
    /// Resident bytes (model footprints + checker caches).
    pub mem_bytes: u64,
    /// Configured memory budget in bytes (whole server).
    pub mem_budget: u64,
    /// Models loaded over the server's lifetime.
    pub loads: u64,
    /// LRU whole-model evictions.
    pub evictions: u64,
    /// Checker caches shed to fit the budget (model kept).
    pub cache_trims: u64,
    /// Check requests served.
    pub checks: u64,
    /// Formulas answered (a batch of 16 counts 16).
    pub formulas_checked: u64,
    /// Deltas applied.
    pub deltas: u64,
    /// Requests shed by admission control (cost cap or full queue).
    pub shed: u64,
    /// Requests interrupted by cancel/deadline/budget.
    pub interrupted: u64,
    /// Shard worker panics survived.
    pub internal_errors: u64,
    /// Malformed frames answered with protocol errors.
    pub protocol_errors: u64,
    /// Worker threads of the execution pool.
    pub pool_workers: u64,
    /// The pool's measured per-dispatch cost in nanoseconds — the
    /// admission cost model's calibration constant.
    pub pool_dispatch_cost_ns: u64,
    /// Pool workers respawned after chaos-induced deaths.
    pub pool_respawns: u64,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).expect("strings on the wire are < 4 GiB"));
    buf.extend_from_slice(s.as_bytes());
}

fn put_index(buf: &mut Vec<u8>, index: ModalIndex) {
    match index {
        ModalIndex::InOut(i, j) => {
            put_u8(buf, 0);
            put_u32(buf, i as u32);
            put_u32(buf, j as u32);
        }
        ModalIndex::Out(j) => {
            put_u8(buf, 1);
            put_u32(buf, j as u32);
        }
        ModalIndex::In(i) => {
            put_u8(buf, 2);
            put_u32(buf, i as u32);
        }
        ModalIndex::Any => put_u8(buf, 3),
    }
}

fn put_variant(buf: &mut Vec<u8>, v: ModelVariant) {
    put_u8(
        buf,
        match v {
            ModelVariant::PlusPlus => 0,
            ModelVariant::MinusPlus => 1,
            ModelVariant::PlusMinus => 2,
            ModelVariant::MinusMinus => 3,
        },
    );
}

fn put_spec(buf: &mut Vec<u8>, spec: &ModelSpec) {
    match spec {
        ModelSpec::Edges { variant, n, degrees, relations } => {
            put_u8(buf, 0);
            put_variant(buf, *variant);
            put_u64(buf, *n);
            match degrees {
                Some(d) => {
                    put_u8(buf, 1);
                    put_u32(buf, d.len() as u32);
                    d.iter().for_each(|&x| put_u64(buf, x));
                }
                None => put_u8(buf, 0),
            }
            put_u32(buf, relations.len() as u32);
            for (index, edges) in relations {
                put_index(buf, *index);
                put_u32(buf, edges.len() as u32);
                for &(v, w) in edges {
                    put_u32(buf, v);
                    put_u32(buf, w);
                }
            }
        }
        ModelSpec::Path { n } => {
            put_u8(buf, 1);
            put_u64(buf, *n);
        }
        ModelSpec::Gnp { n, p_bits, seed } => {
            put_u8(buf, 2);
            put_u64(buf, *n);
            put_u64(buf, *p_bits);
            put_u64(buf, *seed);
        }
    }
}

fn put_delta(buf: &mut Vec<u8>, delta: &DeltaSpec) {
    put_u32(buf, delta.add.len() as u32);
    for &(index, v, w) in &delta.add {
        put_index(buf, index);
        put_u32(buf, v);
        put_u32(buf, w);
    }
    put_u32(buf, delta.remove.len() as u32);
    for &(index, v, w) in &delta.remove {
        put_index(buf, index);
        put_u32(buf, v);
        put_u32(buf, w);
    }
    put_u32(buf, delta.valuation.len() as u32);
    for &(v, d) in &delta.valuation {
        put_u32(buf, v);
        put_u64(buf, d);
    }
    put_u32(buf, delta.crash.len() as u32);
    delta.crash.iter().for_each(|&v| put_u32(buf, v));
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Cursor over a frame body. Every read is bounds-checked; element
/// counts are validated against the bytes actually remaining before
/// anything is allocated, so a hostile count cannot balloon memory.
struct Rd<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Rd<'a> {
        Rd { b, at: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.at.checked_add(len).ok_or(ProtocolError::Truncated)?;
        if end > self.b.len() {
            return Err(ProtocolError::Truncated);
        }
        let out = &self.b[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an element count and rejects it unless at least
    /// `per_item_min` bytes per element remain in the body.
    fn count(&mut self, per_item_min: usize) -> Result<usize, ProtocolError> {
        let c = self.u32()? as usize;
        if c.saturating_mul(per_item_min) > self.b.len() - self.at {
            return Err(ProtocolError::Truncated);
        }
        Ok(c)
    }

    fn str(&mut self) -> Result<&'a str, ProtocolError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| ProtocolError::BadUtf8)
    }

    fn index(&mut self) -> Result<ModalIndex, ProtocolError> {
        match self.u8()? {
            0 => Ok(ModalIndex::InOut(self.u32()? as usize, self.u32()? as usize)),
            1 => Ok(ModalIndex::Out(self.u32()? as usize)),
            2 => Ok(ModalIndex::In(self.u32()? as usize)),
            3 => Ok(ModalIndex::Any),
            tag => Err(ProtocolError::BadTag { what: "modal index", tag }),
        }
    }

    fn variant(&mut self) -> Result<ModelVariant, ProtocolError> {
        match self.u8()? {
            0 => Ok(ModelVariant::PlusPlus),
            1 => Ok(ModelVariant::MinusPlus),
            2 => Ok(ModelVariant::PlusMinus),
            3 => Ok(ModelVariant::MinusMinus),
            tag => Err(ProtocolError::BadTag { what: "model variant", tag }),
        }
    }

    fn spec(&mut self) -> Result<ModelSpec, ProtocolError> {
        match self.u8()? {
            0 => {
                let variant = self.variant()?;
                let n = self.u64()?;
                let degrees = match self.u8()? {
                    0 => None,
                    1 => {
                        let c = self.count(8)?;
                        Some((0..c).map(|_| self.u64()).collect::<Result<_, _>>()?)
                    }
                    tag => return Err(ProtocolError::BadTag { what: "degrees option", tag }),
                };
                let rel_count = self.count(5)?;
                let mut relations = Vec::with_capacity(rel_count);
                for _ in 0..rel_count {
                    let index = self.index()?;
                    let edge_count = self.count(8)?;
                    let edges = (0..edge_count)
                        .map(|_| Ok((self.u32()?, self.u32()?)))
                        .collect::<Result<_, ProtocolError>>()?;
                    relations.push((index, edges));
                }
                Ok(ModelSpec::Edges { variant, n, degrees, relations })
            }
            1 => Ok(ModelSpec::Path { n: self.u64()? }),
            2 => Ok(ModelSpec::Gnp { n: self.u64()?, p_bits: self.u64()?, seed: self.u64()? }),
            tag => Err(ProtocolError::BadTag { what: "model spec", tag }),
        }
    }

    fn delta(&mut self) -> Result<DeltaSpec, ProtocolError> {
        let add_count = self.count(9)?;
        let add = (0..add_count)
            .map(|_| Ok((self.index()?, self.u32()?, self.u32()?)))
            .collect::<Result<_, ProtocolError>>()?;
        let remove_count = self.count(9)?;
        let remove = (0..remove_count)
            .map(|_| Ok((self.index()?, self.u32()?, self.u32()?)))
            .collect::<Result<_, ProtocolError>>()?;
        let val_count = self.count(12)?;
        let valuation = (0..val_count)
            .map(|_| Ok((self.u32()?, self.u64()?)))
            .collect::<Result<_, ProtocolError>>()?;
        let crash_count = self.count(4)?;
        let crash = (0..crash_count).map(|_| self.u32()).collect::<Result<_, _>>()?;
        Ok(DeltaSpec { add, remove, valuation, crash })
    }

    fn formula(&mut self) -> Result<Formula, ProtocolError> {
        let s = self.str()?;
        parse(s).map_err(|e| ProtocolError::BadFormula(format!("{e} in {s:?}")))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.at == self.b.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes)
        }
    }
}

impl Request {
    /// Encodes the frame body (opcode byte included, length prefix
    /// excluded — [`crate::framing::write_frame`] adds that).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Ping => put_u8(&mut buf, 0x01),
            Request::Load { model, spec } => {
                put_u8(&mut buf, 0x02);
                put_u64(&mut buf, *model);
                put_spec(&mut buf, spec);
            }
            Request::Evict { model } => {
                put_u8(&mut buf, 0x03);
                put_u64(&mut buf, *model);
            }
            Request::Check { model, formulas } => {
                put_u8(&mut buf, 0x04);
                put_u64(&mut buf, *model);
                put_u32(&mut buf, formulas.len() as u32);
                for f in formulas {
                    put_str(&mut buf, &f.to_string());
                }
            }
            Request::Delta { model, delta } => {
                put_u8(&mut buf, 0x05);
                put_u64(&mut buf, *model);
                put_delta(&mut buf, delta);
            }
            Request::Stats => put_u8(&mut buf, 0x06),
        }
        buf
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for any malformed body; decoding never
    /// panics.
    pub fn decode(body: &[u8]) -> Result<Request, ProtocolError> {
        let mut rd = Rd::new(body);
        let req = match rd.u8()? {
            0x01 => Request::Ping,
            0x02 => Request::Load { model: rd.u64()?, spec: rd.spec()? },
            0x03 => Request::Evict { model: rd.u64()? },
            0x04 => {
                let model = rd.u64()?;
                let count = rd.count(4)?;
                let formulas =
                    (0..count).map(|_| rd.formula()).collect::<Result<_, _>>()?;
                Request::Check { model, formulas }
            }
            0x05 => Request::Delta { model: rd.u64()?, delta: rd.delta()? },
            0x06 => Request::Stats,
            op => return Err(ProtocolError::UnknownOpcode(op)),
        };
        rd.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Shorthand for an [`ErrorFrame`] response.
    #[must_use]
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error(ErrorFrame { code, message: message.into() })
    }

    /// Encodes the frame body (opcode byte included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Pong => put_u8(&mut buf, 0x81),
            Response::Loaded { model, worlds, version } => {
                put_u8(&mut buf, 0x82);
                put_u64(&mut buf, *model);
                put_u64(&mut buf, *worlds);
                put_u64(&mut buf, *version);
            }
            Response::Evicted { model, existed } => {
                put_u8(&mut buf, 0x83);
                put_u64(&mut buf, *model);
                put_u8(&mut buf, u8::from(*existed));
            }
            Response::Truths { worlds, vectors } => {
                put_u8(&mut buf, 0x84);
                put_u64(&mut buf, *worlds);
                put_u32(&mut buf, vectors.len() as u32);
                for words in vectors {
                    put_u32(&mut buf, words.len() as u32);
                    words.iter().for_each(|&w| put_u64(&mut buf, w));
                }
            }
            Response::DeltaApplied { model, version, touched } => {
                put_u8(&mut buf, 0x85);
                put_u64(&mut buf, *model);
                put_u64(&mut buf, *version);
                put_u64(&mut buf, *touched);
            }
            Response::Stats(s) => {
                put_u8(&mut buf, 0x86);
                for v in s.as_array() {
                    put_u64(&mut buf, v);
                }
            }
            Response::Error(e) => {
                put_u8(&mut buf, 0x87);
                put_u8(
                    &mut buf,
                    match e.code {
                        ErrorCode::Protocol => 0,
                        ErrorCode::NoSuchModel => 1,
                        ErrorCode::Logic => 2,
                        ErrorCode::Cancelled => 3,
                        ErrorCode::DeadlineExceeded => 4,
                        ErrorCode::BudgetExceeded => 5,
                        ErrorCode::Overloaded => 6,
                        ErrorCode::Internal => 7,
                    },
                );
                put_str(&mut buf, &e.message);
            }
        }
        buf
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for any malformed body; decoding never
    /// panics.
    pub fn decode(body: &[u8]) -> Result<Response, ProtocolError> {
        let mut rd = Rd::new(body);
        let resp = match rd.u8()? {
            0x81 => Response::Pong,
            0x82 => Response::Loaded { model: rd.u64()?, worlds: rd.u64()?, version: rd.u64()? },
            0x83 => {
                let model = rd.u64()?;
                let existed = match rd.u8()? {
                    0 => false,
                    1 => true,
                    tag => return Err(ProtocolError::BadTag { what: "existed flag", tag }),
                };
                Response::Evicted { model, existed }
            }
            0x84 => {
                let worlds = rd.u64()?;
                let count = rd.count(4)?;
                let mut vectors = Vec::with_capacity(count);
                for _ in 0..count {
                    let words = rd.count(8)?;
                    vectors.push((0..words).map(|_| rd.u64()).collect::<Result<_, _>>()?);
                }
                Response::Truths { worlds, vectors }
            }
            0x85 => Response::DeltaApplied {
                model: rd.u64()?,
                version: rd.u64()?,
                touched: rd.u64()?,
            },
            0x86 => {
                let mut arr = [0u64; ServerStats::FIELDS];
                for slot in &mut arr {
                    *slot = rd.u64()?;
                }
                Response::Stats(ServerStats::from_array(arr))
            }
            0x87 => {
                let code = match rd.u8()? {
                    0 => ErrorCode::Protocol,
                    1 => ErrorCode::NoSuchModel,
                    2 => ErrorCode::Logic,
                    3 => ErrorCode::Cancelled,
                    4 => ErrorCode::DeadlineExceeded,
                    5 => ErrorCode::BudgetExceeded,
                    6 => ErrorCode::Overloaded,
                    7 => ErrorCode::Internal,
                    tag => return Err(ProtocolError::BadTag { what: "error code", tag }),
                };
                Response::Error(ErrorFrame { code, message: rd.str()?.to_string() })
            }
            op => return Err(ProtocolError::UnknownOpcode(op)),
        };
        rd.finish()?;
        Ok(resp)
    }
}

impl ServerStats {
    /// Number of `u64` fields on the wire.
    pub const FIELDS: usize = 17;

    fn as_array(&self) -> [u64; Self::FIELDS] {
        [
            self.shards,
            self.models,
            self.mem_bytes,
            self.mem_budget,
            self.loads,
            self.evictions,
            self.cache_trims,
            self.checks,
            self.formulas_checked,
            self.deltas,
            self.shed,
            self.interrupted,
            self.internal_errors,
            self.protocol_errors,
            self.pool_workers,
            self.pool_dispatch_cost_ns,
            self.pool_respawns,
        ]
    }

    fn from_array(a: [u64; Self::FIELDS]) -> ServerStats {
        ServerStats {
            shards: a[0],
            models: a[1],
            mem_bytes: a[2],
            mem_budget: a[3],
            loads: a[4],
            evictions: a[5],
            cache_trims: a[6],
            checks: a[7],
            formulas_checked: a[8],
            deltas: a[9],
            shed: a[10],
            interrupted: a[11],
            internal_errors: a[12],
            protocol_errors: a[13],
            pool_workers: a[14],
            pool_dispatch_cost_ns: a[15],
            pool_respawns: a[16],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_build() {
        let spec = ModelSpec::gnp(24, 0.2, 7);
        let a = spec.build().unwrap();
        let b = ModelSpec::from_model(&a).build().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.degrees(), b.degrees());
        for r in 0..a.relation_count() {
            for v in 0..a.len() {
                assert_eq!(a.successors_dense(r, v), b.successors_dense(r, v));
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut body = Request::Ping.encode();
        body.push(0);
        assert_eq!(Request::decode(&body), Err(ProtocolError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_hostile_counts_without_allocating() {
        // A Check frame claiming u32::MAX formulas in a 20-byte body.
        let mut body = vec![0x04];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&body), Err(ProtocolError::Truncated));
    }
}
