//! The server: a `TcpListener` accept loop, one connection thread per
//! client, and the shard fan-out.
//!
//! Connection threads decode frames, route model-keyed requests to the
//! owning shard over a *bounded* queue (full queue = `Overloaded`
//! error frame, the shedding half of admission control), answer
//! `Ping`/`Stats` in place, and write the reply frame. A malformed
//! frame body is answered with a `Protocol` error frame and the
//! connection continues — the frame boundary is intact. An oversized
//! length prefix is answered and then the connection closes: past a
//! corrupt prefix there is no boundary left to trust.

use crate::config::ServeConfig;
use crate::framing::{read_frame, write_frame, FrameError};
use crate::protocol::{ErrorCode, Request, Response, ServerStats};
use crate::shard::{self, ShardCmd, ShardStats};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Counters owned by the connection layer (shards keep their own).
#[derive(Debug, Default)]
struct ServerCounters {
    protocol_errors: AtomicU64,
    queue_shed: AtomicU64,
}

/// A running server. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops the accept loop; shard and
/// connection threads drain and exit once their queues close.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the shards and the accept loop, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cfg = Arc::new(cfg);
        let shards: Arc<[SyncSender<ShardCmd>]> = (0..cfg.shards)
            .map(|i| {
                let (tx, rx) = mpsc::sync_channel(cfg.queue_cap);
                let cfg = Arc::clone(&cfg);
                thread::Builder::new()
                    .name(format!("serve-shard-{i}"))
                    .spawn(move || shard::run(rx, cfg))
                    .expect("spawning a shard worker");
                tx
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServerCounters::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let cfg = Arc::clone(&cfg);
            thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let shards = Arc::clone(&shards);
                        let counters = Arc::clone(&counters);
                        let cfg = Arc::clone(&cfg);
                        let _ = thread::Builder::new().name("serve-conn".to_string()).spawn(
                            move || {
                                let _ = serve_connection(stream, &shards, &counters, &cfg);
                            },
                        );
                    }
                })
                .expect("spawning the accept loop")
        };
        Ok(Server { addr, stop, accept: Some(accept) })
    }

    /// The bound address (read this back when binding port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Idempotent. Established
    /// connections keep being served until the clients hang up.
    pub fn shutdown(&mut self) {
        let Some(handle) = self.accept.take() else { return };
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection's read-decode-route-reply loop.
fn serve_connection(
    stream: TcpStream,
    shards: &[SyncSender<ShardCmd>],
    counters: &ServerCounters,
    cfg: &ServeConfig,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            // Clean close, or the transport died: nothing to answer.
            Ok(None) | Err(FrameError::Io(_)) => return Ok(()),
            Err(FrameError::Protocol(e)) => {
                // Oversized prefix: report, then close — the stream
                // has no trustworthy frame boundary anymore.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::error(ErrorCode::Protocol, e.to_string());
                let _ = write_frame(&mut writer, &resp.encode());
                return Ok(());
            }
        };
        let resp = match Request::decode(&body) {
            Ok(req) => route(req, shards, counters, cfg),
            Err(e) => {
                // The body was malformed but fully framed: answer and
                // keep going, the next frame is still addressable.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::error(ErrorCode::Protocol, e.to_string())
            }
        };
        if write_frame(&mut writer, &resp.encode()).is_err() {
            return Ok(());
        }
    }
}

fn route(
    req: Request,
    shards: &[SyncSender<ShardCmd>],
    counters: &ServerCounters,
    cfg: &ServeConfig,
) -> Response {
    let model = match &req {
        Request::Ping => return Response::Pong,
        Request::Stats => return aggregate_stats(shards, counters, cfg),
        Request::Load { model, .. }
        | Request::Evict { model }
        | Request::Check { model, .. }
        | Request::Delta { model, .. } => *model,
    };
    let shard = &shards[(model % shards.len() as u64) as usize];
    let (tx, rx) = mpsc::channel();
    match shard.try_send(ShardCmd::Op { req, reply: tx }) {
        Ok(()) => rx.recv().unwrap_or_else(|_| {
            Response::error(ErrorCode::Internal, "shard worker terminated")
        }),
        Err(TrySendError::Full(_)) => {
            counters.queue_shed.fetch_add(1, Ordering::Relaxed);
            Response::error(
                ErrorCode::Overloaded,
                format!("shard queue full ({} requests deep)", cfg.queue_cap),
            )
        }
        Err(TrySendError::Disconnected(_)) => {
            Response::error(ErrorCode::Internal, "shard worker terminated")
        }
    }
}

fn aggregate_stats(
    shards: &[SyncSender<ShardCmd>],
    counters: &ServerCounters,
    cfg: &ServeConfig,
) -> Response {
    let mut total = ServerStats {
        shards: shards.len() as u64,
        mem_budget: cfg.mem_budget as u64,
        shed: counters.queue_shed.load(Ordering::Relaxed),
        protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
        ..ServerStats::default()
    };
    for shard in shards {
        let (tx, rx) = mpsc::channel();
        if shard.send(ShardCmd::Stats { reply: tx }).is_err() {
            continue;
        }
        let Ok(s) = rx.recv() else { continue };
        let ShardStats {
            models,
            mem_bytes,
            loads,
            evictions,
            cache_trims,
            checks,
            formulas_checked,
            deltas,
            shed,
            interrupted,
            internal_errors,
        } = s;
        total.models += models;
        total.mem_bytes += mem_bytes;
        total.loads += loads;
        total.evictions += evictions;
        total.cache_trims += cache_trims;
        total.checks += checks;
        total.formulas_checked += formulas_checked;
        total.deltas += deltas;
        total.shed += shed;
        total.interrupted += interrupted;
        total.internal_errors += internal_errors;
    }
    let pool = portnum_graph::pool::WorkerPool::global().stats();
    total.pool_workers = pool.workers as u64;
    total.pool_dispatch_cost_ns = pool.dispatch_cost_ns;
    total.pool_respawns = pool.respawn_count as u64;
    Response::Stats(total)
}
