//! Shard workers: each owns the models whose id hashes to it and
//! serves their requests strictly in arrival order.
//!
//! A shard is a plain thread draining a bounded queue. Per-model state
//! lives in [`ModelEntry`]s; every request runs the detach → resume
//! handshake so the long-lived [`CheckerCache`] survives between
//! requests without holding a borrow of the model across them.
//!
//! # Panic safety and version consistency
//!
//! Every op runs under `catch_unwind`. The checker cache is `take()`n
//! *before* any fallible work and written back only on the success
//! path, so a panic (or an injected chaos failpoint) leaves the entry
//! cold-but-consistent: the model keeps whatever state was already
//! committed — [`Kripke::apply_delta`] is atomic, the checker commit
//! is whole-or-nothing — and the next request simply rebuilds the
//! cache. Three chaos sites pin this: `serve-shard-op` (panic before
//! any mutation), `serve-batch` (between the two coalesced halves of
//! a check batch), and `serve-delta` (between the committed delta and
//! the cache repair).
//!
//! [`CheckerCache`]: portnum_logic::CheckerCache
//! [`Kripke::apply_delta`]: portnum_logic::Kripke::apply_delta

use crate::admission::{self, Admission};
use crate::cache::{entry_bytes, model_bytes, ModelEntry};
use crate::config::ServeConfig;
use crate::protocol::{DeltaSpec, ErrorCode, ModelSpec, Request, Response};
use portnum_logic::{Formula, LogicError, ModelChecker};
use portnum_graph::resilience::InterruptReason;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// What the connection layer sends a shard.
pub(crate) enum ShardCmd {
    /// A model-keyed request; the response goes back on `reply`.
    Op {
        /// The decoded request (`Load`/`Evict`/`Check`/`Delta`).
        req: Request,
        /// Per-request reply channel.
        reply: Sender<Response>,
    },
    /// Snapshot request for the stats aggregation fan-out.
    Stats {
        /// Where the snapshot goes.
        reply: Sender<ShardStats>,
    },
}

/// One shard's observable state, aggregated into
/// [`ServerStats`](crate::protocol::ServerStats).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardStats {
    pub models: u64,
    pub mem_bytes: u64,
    pub loads: u64,
    pub evictions: u64,
    pub cache_trims: u64,
    pub checks: u64,
    pub formulas_checked: u64,
    pub deltas: u64,
    pub shed: u64,
    pub interrupted: u64,
    pub internal_errors: u64,
}

/// The shard worker loop: drains `rx` until every sender hung up.
pub(crate) fn run(rx: Receiver<ShardCmd>, cfg: Arc<ServeConfig>) {
    let mut shard = Shard::new(cfg);
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::Stats { reply } => {
                let _ = reply.send(shard.snapshot());
            }
            ShardCmd::Op { req, reply } => {
                let resp = match catch_unwind(AssertUnwindSafe(|| shard.handle(req))) {
                    Ok(resp) => resp,
                    Err(payload) => {
                        shard.stats.internal_errors += 1;
                        // Re-establish the byte accounting and the
                        // budget invariant from scratch: whatever the
                        // unwound op had half-done to the counters, the
                        // entries themselves are consistent.
                        shard.recount_all();
                        Response::error(
                            ErrorCode::Internal,
                            format!("shard worker panicked: {}", panic_message(&payload)),
                        )
                    }
                };
                let _ = reply.send(resp);
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

struct Shard {
    cfg: Arc<ServeConfig>,
    budget: usize,
    models: HashMap<u64, ModelEntry>,
    mem_bytes: usize,
    tick: u64,
    stats: ShardStats,
}

impl Shard {
    fn new(cfg: Arc<ServeConfig>) -> Shard {
        let budget = cfg.shard_budget();
        Shard {
            cfg,
            budget,
            models: HashMap::new(),
            mem_bytes: 0,
            tick: 0,
            stats: ShardStats::default(),
        }
    }

    fn snapshot(&self) -> ShardStats {
        ShardStats {
            models: self.models.len() as u64,
            mem_bytes: self.mem_bytes as u64,
            ..self.stats
        }
    }

    fn handle(&mut self, req: Request) -> Response {
        // Chaos site at the top of every shard op: a `panic` action
        // here proves the worker survives and the client still gets an
        // error frame with the shard state untouched.
        fail::fail_point!("serve-shard-op");
        match req {
            Request::Load { model, spec } => self.load(model, &spec),
            Request::Evict { model } => self.evict(model),
            Request::Check { model, formulas } => self.check(model, &formulas),
            Request::Delta { model, delta } => self.delta(model, &delta),
            // Ping/Stats are answered in the connection layer; routing
            // them here is a server bug, not a client error.
            Request::Ping | Request::Stats => {
                Response::error(ErrorCode::Internal, "request is not shard-routable")
            }
        }
    }

    fn load(&mut self, id: u64, spec: &ModelSpec) -> Response {
        let model = match spec.build() {
            Ok(m) => m,
            Err(e) => return logic_error(&e),
        };
        let bytes = model_bytes(&model);
        if bytes > self.budget {
            self.stats.shed += 1;
            return Response::error(
                ErrorCode::Overloaded,
                format!("model footprint {bytes} B exceeds the shard budget {} B", self.budget),
            );
        }
        let worlds = model.len() as u64;
        let version = model.version();
        self.tick += 1;
        let entry = ModelEntry { model, cache: None, bytes, last_used: self.tick };
        if let Some(old) = self.models.insert(id, entry) {
            self.mem_bytes -= old.bytes;
        }
        self.mem_bytes += bytes;
        self.stats.loads += 1;
        self.enforce_budget(Some(id));
        Response::Loaded { model: id, worlds, version }
    }

    fn evict(&mut self, id: u64) -> Response {
        let existed = match self.models.remove(&id) {
            Some(entry) => {
                self.mem_bytes -= entry.bytes;
                true
            }
            None => false,
        };
        Response::Evicted { model: id, existed }
    }

    fn check(&mut self, id: u64, formulas: &[Formula]) -> Response {
        self.tick += 1;
        let tick = self.tick;
        let cfg = Arc::clone(&self.cfg);
        let Some(entry) = self.models.get_mut(&id) else {
            return no_such_model(id);
        };
        entry.last_used = tick;
        // Taken before any fallible work; written back only below, so
        // an unwind in between leaves the entry cold but consistent.
        let cache = entry.cache.take();
        let mut checker = match cache {
            Some(c) => ModelChecker::resume(&entry.model, c, &[]),
            None => ModelChecker::new(&entry.model),
        };
        let outcome = run_batch(&mut checker, formulas, &cfg);
        entry.cache = Some(checker.detach());
        let worlds = entry.model.len() as u64;
        match outcome {
            Ok(vectors) => {
                self.stats.checks += 1;
                self.stats.formulas_checked += formulas.len() as u64;
                self.recount(id);
                self.enforce_budget(Some(id));
                Response::Truths { worlds, vectors }
            }
            Err(BatchError::Shed { estimate, cap }) => {
                self.stats.shed += 1;
                Response::error(
                    ErrorCode::Overloaded,
                    format!(
                        "estimated work {estimate} (≈{} ns) over the admission cap {cap}",
                        admission::estimated_cost_ns(estimate)
                    ),
                )
            }
            Err(BatchError::Logic(e)) => {
                if matches!(e, LogicError::Interrupted(_)) {
                    self.stats.interrupted += 1;
                }
                // A denied or interrupted batch still warmed the cache
                // with whatever committed; keep the accounting honest.
                self.recount(id);
                self.enforce_budget(Some(id));
                logic_error(&e)
            }
        }
    }

    fn delta(&mut self, id: u64, spec: &DeltaSpec) -> Response {
        self.tick += 1;
        let tick = self.tick;
        let Some(entry) = self.models.get_mut(&id) else {
            return no_such_model(id);
        };
        entry.last_used = tick;
        let cache = entry.cache.take();
        let delta = spec.to_delta();
        let touched = match entry.model.apply_delta(&delta) {
            Ok(t) => t,
            Err(e) => {
                // Validation is atomic: the model was not touched, so
                // the cache it matches goes straight back.
                entry.cache = cache;
                return logic_error(&e);
            }
        };
        // Chaos site between the committed delta and the cache repair:
        // a panic here may cost the (already taken) cache, never the
        // model's version consistency.
        fail::fail_point!("serve-delta");
        if let Some(c) = cache {
            let checker = ModelChecker::resume(&entry.model, c, &touched);
            entry.cache = Some(checker.detach());
        }
        let version = entry.model.version();
        let touched_count = touched.len() as u64;
        self.stats.deltas += 1;
        self.recount(id);
        self.enforce_budget(Some(id));
        Response::DeltaApplied { model: id, version, touched: touched_count }
    }

    /// Re-prices one entry after its cache may have grown or shrunk.
    fn recount(&mut self, id: u64) {
        if let Some(entry) = self.models.get_mut(&id) {
            let bytes = entry_bytes(entry);
            self.mem_bytes = self.mem_bytes - entry.bytes + bytes;
            entry.bytes = bytes;
        }
    }

    /// Re-prices everything (the post-panic self-heal path).
    fn recount_all(&mut self) {
        let ids: Vec<u64> = self.models.keys().copied().collect();
        self.mem_bytes = 0;
        for id in ids {
            if let Some(entry) = self.models.get_mut(&id) {
                entry.bytes = entry_bytes(entry);
                self.mem_bytes += entry.bytes;
            }
        }
        self.enforce_budget(None);
    }

    /// Restores `mem_bytes <= budget`: LRU whole-entry eviction first
    /// (sparing `keep`, the entry serving the current request), then —
    /// when only `keep` remains — shedding its checker cache. Loads
    /// reject models larger than the budget outright, so the loop
    /// always terminates under it.
    fn enforce_budget(&mut self, keep: Option<u64>) {
        while self.mem_bytes > self.budget {
            let victim = self
                .models
                .iter()
                .filter(|(id, _)| Some(**id) != keep)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    let entry = self.models.remove(&id).expect("victim chosen from the map");
                    self.mem_bytes -= entry.bytes;
                    self.stats.evictions += 1;
                }
                None => {
                    let Some(id) = keep else { break };
                    let Some(entry) = self.models.get_mut(&id) else { break };
                    if entry.cache.take().is_none() {
                        break;
                    }
                    self.stats.cache_trims += 1;
                    let bytes = model_bytes(&entry.model);
                    self.mem_bytes = self.mem_bytes - entry.bytes + bytes;
                    entry.bytes = bytes;
                }
            }
        }
    }
}

enum BatchError {
    Logic(LogicError),
    Shed { estimate: u64, cap: u64 },
}

/// Prices, admits, and runs one coalesced batch, returning the packed
/// truth vectors as raw words. The batch is split around the
/// `serve-batch` chaos site; both halves run as suites against the
/// shared cache, so coalescing (and the whole-or-nothing commit per
/// half) is preserved.
fn run_batch(
    checker: &mut ModelChecker<'_>,
    formulas: &[Formula],
    cfg: &ServeConfig,
) -> Result<Vec<Vec<u64>>, BatchError> {
    let estimate = checker.estimate_work(formulas).map_err(BatchError::Logic)? as u64;
    if let Admission::Shed { estimate, cap } = admission::admit(cfg, estimate) {
        return Err(BatchError::Shed { estimate, cap });
    }
    let (ctl, token) = admission::control_for(cfg);
    crate::testing::publish_cancel_token(token);
    let half = formulas.len() / 2;
    let mut vecs =
        checker.check_suite_controlled(&formulas[..half], &ctl).map_err(BatchError::Logic)?;
    // Chaos site mid-batch: the first half is committed, the second
    // hasn't started — a cancel or panic here must surface as one
    // error frame with the connection and the committed half intact.
    fail::fail_point!("serve-batch");
    vecs.extend(
        checker.check_suite_controlled(&formulas[half..], &ctl).map_err(BatchError::Logic)?,
    );
    Ok(vecs.iter().map(|b| b.words().to_vec()).collect())
}

fn no_such_model(id: u64) -> Response {
    Response::error(ErrorCode::NoSuchModel, format!("model {id} is not loaded"))
}

fn logic_error(e: &LogicError) -> Response {
    let code = match e {
        LogicError::Interrupted(i) => match i.reason {
            InterruptReason::Cancelled => ErrorCode::Cancelled,
            InterruptReason::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            InterruptReason::BudgetExceeded => ErrorCode::BudgetExceeded,
        },
        _ => ErrorCode::Logic,
    };
    Response::error(code, e.to_string())
}
