//! Server-side chaos (satellite 3 of ISSUE 9): failpoints injected at
//! the three serving-layer sites —
//!
//! * `serve-shard-op`: the shard worker panics before touching any
//!   state — the worker survives, the client gets an `Internal` error
//!   frame, and a retry is bit-identical;
//! * `serve-batch`: the request's own [`CancelToken`] trips between
//!   the two coalesced halves of a check batch — the typed `Cancelled`
//!   frame arrives, the connection survives, and the committed half
//!   never tears the cache (the disarmed retry is bit-identical);
//! * `serve-delta`: a panic lands between the committed delta and the
//!   cache repair — the version stamp stays consistent (advanced
//!   exactly once, never replayed), and follow-up checks agree with an
//!   oracle that applied the same delta.
//!
//! Plus the admission plane's typed outcomes: a deadline raised
//! mid-batch maps to `DeadlineExceeded`, a cost cap to `Overloaded`.
//!
//! The failpoint registry is process-global, so every test serialises
//! on one lock and tears the registry down around itself (the same
//! idiom as the logic crate's chaos harness).
//!
//! [`CancelToken`]: portnum_graph::resilience::CancelToken

use portnum_logic::{Formula, Kripke, ModalIndex, ModelChecker};
use portnum_serve::{
    Client, ClientError, DeltaSpec, ErrorCode, ModelSpec, ServeConfig, Server, Truths,
};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One registry, one test at a time.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    fail::teardown();
    guard
}

fn single_shard_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        ..ServeConfig::default()
    })
    .expect("binding an ephemeral port")
}

/// A diamond tower with trailing connectives: several instruction
/// boundaries, so an interrupt raised mid-batch is observed inside the
/// second half rather than slipping through as a cache hit.
fn tower(depth: usize) -> Formula {
    let mut f = Formula::prop(2);
    for _ in 0..depth {
        f = Formula::diamond(ModalIndex::Any, &f);
    }
    f.or(&Formula::prop(1)).and(&Formula::prop(0).not())
}

/// The two-half batch every chaos site is exercised through.
fn chaos_batch() -> Vec<Formula> {
    vec![Formula::prop(0), tower(4)]
}

fn expect_code(result: Result<Truths, ClientError>, code: ErrorCode) -> String {
    match result {
        Err(ClientError::Server(e)) if e.code == code => e.message,
        other => panic!("expected a {code:?} error frame, got {other:?}"),
    }
}

#[test]
fn shard_panic_is_survived_with_state_intact() {
    let _guard = serial();
    let mut server = single_shard_server();
    let mut client = Client::connect(server.addr()).expect("connecting");

    let spec = ModelSpec::gnp(64, 0.1, 42);
    client.load(7, &spec).expect("load");
    let baseline = client.check(7, &chaos_batch()).expect("baseline check");

    fail::cfg("serve-shard-op", "1*panic(injected chaos)").expect("arming the failpoint");
    let message = expect_code(client.check(7, &chaos_batch()), ErrorCode::Internal);
    assert!(message.contains("panicked"), "unexpected message: {message}");

    // The worker unwound before touching the entry: the same
    // connection retries and gets the exact same bits back.
    let retry = client.check(7, &chaos_batch()).expect("retry after the panic");
    assert_eq!(retry, baseline);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.internal_errors, 1);
    assert_eq!(stats.models, 1);
    fail::teardown();
    server.shutdown();
}

#[test]
fn mid_batch_cancel_is_typed_and_the_retry_is_bit_identical() {
    let _guard = serial();
    let mut server = single_shard_server();
    let mut client = Client::connect(server.addr()).expect("connecting");

    let spec = ModelSpec::gnp(64, 0.1, 43);
    client.load(3, &spec).expect("load");
    let baseline = client.check(3, &chaos_batch()).expect("baseline check");
    // Cold the cache again so the second half has real work in which
    // to observe the cancel (cache hits commit nothing new).
    client.evict(3).expect("evict");
    client.load(3, &spec).expect("reload");

    // Between the two batch halves, trip the token the server
    // published for this very request.
    fail::cfg_callback("serve-batch", || {
        if let Some(token) = portnum_serve::testing::latest_cancel_token() {
            token.cancel();
        }
    });
    expect_code(client.check(3, &chaos_batch()), ErrorCode::Cancelled);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.interrupted, 1);
    assert_eq!(stats.internal_errors, 0);

    // Disarmed, the same connection re-runs the batch: the committed
    // first half plus the rebuilt second half answer bit-identically.
    fail::teardown();
    let retry = client.check(3, &chaos_batch()).expect("retry after the cancel");
    assert_eq!(retry, baseline);
    server.shutdown();
}

#[test]
fn delta_chaos_keeps_versions_consistent() {
    let _guard = serial();
    let mut server = single_shard_server();
    let mut client = Client::connect(server.addr()).expect("connecting");

    let spec = ModelSpec::gnp(64, 0.1, 44);
    client.load(9, &spec).expect("load");
    client.check(9, &chaos_batch()).expect("warming the cache");
    let mut oracle: Kripke = spec.build().expect("oracle builds");

    // The panic lands after the delta committed, before the cache
    // repair: the model's version must advance exactly once.
    let delta = DeltaSpec {
        add: vec![(ModalIndex::Any, 0, 5)],
        crash: vec![3],
        ..DeltaSpec::default()
    };
    fail::cfg("serve-delta", "1*panic(injected chaos)").expect("arming the failpoint");
    match client.apply_delta(9, &delta) {
        Err(ClientError::Server(e)) if e.code == ErrorCode::Internal => {}
        other => panic!("expected an Internal error frame, got {other:?}"),
    }
    oracle.apply_delta(&delta.to_delta()).expect("oracle applies the same delta");

    // The cache was lost mid-repair but the committed delta was not:
    // a cold re-check agrees with the oracle bit-for-bit.
    let truths = client.check(9, &chaos_batch()).expect("check after the chaos delta");
    let mut checker = ModelChecker::new(&oracle);
    let expected: Vec<Vec<u64>> = checker
        .check_suite(&chaos_batch())
        .expect("oracle suite")
        .iter()
        .map(|b| b.words().to_vec())
        .collect();
    assert_eq!(truths.vectors, expected);

    // And the next (uninjected) delta lands on the agreed version:
    // no stamp was lost or replayed under the unwind.
    let follow_up = DeltaSpec { valuation: vec![(1, 3)], ..DeltaSpec::default() };
    let (version, _) = client.apply_delta(9, &follow_up).expect("follow-up delta");
    oracle.apply_delta(&follow_up.to_delta()).expect("oracle follow-up");
    assert_eq!(version, oracle.version());

    let stats = client.stats().expect("stats");
    assert_eq!(stats.internal_errors, 1);
    assert_eq!(stats.deltas, 1, "the chaos delta died before the counter");
    fail::teardown();
    server.shutdown();
}

#[test]
fn deadline_raised_mid_batch_maps_to_a_typed_frame() {
    let _guard = serial();
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        deadline_ms: Some(25),
        ..ServeConfig::default()
    })
    .expect("binding an ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connecting");

    let spec = ModelSpec::gnp(64, 0.1, 45);
    client.load(1, &spec).expect("load");

    // Burn the whole deadline between the two halves: the second half
    // observes it at its first instruction boundary.
    fail::cfg("serve-batch", "sleep(100)").expect("arming the failpoint");
    expect_code(client.check(1, &chaos_batch()), ErrorCode::DeadlineExceeded);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.interrupted, 1);

    fail::teardown();
    client.check(1, &chaos_batch()).expect("check inside the deadline");
    server.shutdown();
}

#[test]
fn cost_cap_sheds_with_a_priced_message() {
    let _guard = serial();
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        max_cost: Some(2),
        ..ServeConfig::default()
    })
    .expect("binding an ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connecting");

    let spec = ModelSpec::gnp(64, 0.1, 46);
    client.load(4, &spec).expect("load");
    let message = expect_code(client.check(4, &chaos_batch()), ErrorCode::Overloaded);
    assert!(message.contains("admission cap"), "unexpected message: {message}");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.checks, 0);
    server.shutdown();
}
