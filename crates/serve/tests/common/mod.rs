//! Shared helpers for the serve-crate integration suites
//! (`differential`, `soak`): the single-threaded oracle a server's
//! answers are compared against, and the random formula/delta
//! generators both suites draw their traffic from.
//!
//! Each test binary compiles its own copy of this module and uses a
//! subset of it, hence the file-level `dead_code` allowance.
#![allow(dead_code)]

use portnum_logic::{CheckerCache, Formula, Kripke, ModalIndex, ModelChecker};
use portnum_serve::{DeltaSpec, ModelSpec};
use rand::rngs::StdRng;
use rand::Rng;

/// The single-threaded ground truth for one model id: the same spec
/// builds, the same deltas apply, the same suites run.
pub struct Oracle {
    pub model: Kripke,
    pub cache: Option<CheckerCache>,
}

impl Oracle {
    pub fn load(spec: &ModelSpec) -> Oracle {
        Oracle { model: spec.build().expect("oracle spec builds"), cache: None }
    }

    /// One suite over the long-lived cache, exactly the server's
    /// detach → resume handshake.
    pub fn check(&mut self, formulas: &[Formula]) -> Result<Vec<Vec<u64>>, ()> {
        let mut checker = match self.cache.take() {
            Some(c) => ModelChecker::resume(&self.model, c, &[]),
            None => ModelChecker::new(&self.model),
        };
        let out = checker.check_suite(formulas);
        self.cache = Some(checker.detach());
        match out {
            Ok(truths) => Ok(truths.iter().map(|b| b.words().to_vec()).collect()),
            Err(_) => Err(()),
        }
    }

    pub fn apply(&mut self, delta: &DeltaSpec) -> Vec<u32> {
        let touched = self.model.apply_delta(&delta.to_delta()).expect("generated deltas apply");
        if let Some(c) = self.cache.take() {
            self.cache = Some(ModelChecker::resume(&self.model, c, &touched).detach());
        }
        touched
    }
}

/// Random `K₋,₋` formulas; `valid` controls whether the modal indices
/// match the model's family (an `InOut` index on `K₋,₋` must be
/// rejected by server and oracle alike).
pub fn random_formula(rng: &mut StdRng, depth: usize, valid: bool) -> Formula {
    let index = if valid { ModalIndex::Any } else { ModalIndex::InOut(0, 0) };
    if depth == 0 || rng.random_bool(0.3) {
        match rng.random_range(0..4u8) {
            0 => Formula::top(),
            1 => Formula::bottom(),
            _ => Formula::prop(rng.random_range(0..5usize)),
        }
    } else {
        match rng.random_range(0..5u8) {
            0 => random_formula(rng, depth - 1, valid).not(),
            1 => random_formula(rng, depth - 1, valid)
                .and(&random_formula(rng, depth - 1, valid)),
            2 => random_formula(rng, depth - 1, valid).or(&random_formula(rng, depth - 1, valid)),
            3 => Formula::diamond(index, &random_formula(rng, depth - 1, valid)),
            _ => Formula::diamond_geq(
                index,
                rng.random_range(0..4usize),
                &random_formula(rng, depth - 1, valid),
            ),
        }
    }
}

/// A small always-valid delta against the oracle's current state: adds
/// avoid duplicate edges (so `ModelSpec::from_model` reloads stay in
/// the simple-relation regime), removals are drawn from stored edges,
/// and the edits never overlap — a crash expands to removing every
/// edge incident to the world, so an explicit remove touching a
/// crashed world (or the same world crashed twice) would double-remove
/// and fail `apply_delta`'s multiplicity validation.
pub fn random_delta(rng: &mut StdRng, model: &Kripke) -> DeltaSpec {
    let n = model.len() as u32;
    let mut spec = DeltaSpec::default();
    let touches_crash = |spec: &DeltaSpec, v: u32, w: u32| {
        spec.crash.contains(&v) || spec.crash.contains(&w)
    };
    for _ in 0..rng.random_range(1..4usize) {
        match rng.random_range(0..4u8) {
            0 => {
                for _ in 0..4 {
                    let (v, w) = (rng.random_range(0..n), rng.random_range(0..n));
                    let dup = model.successors_dense(0, v as usize).contains(&w)
                        || spec.add.iter().any(|&(_, a, b)| (a, b) == (v, w))
                        || touches_crash(&spec, v, w);
                    if !dup {
                        spec.add.push((ModalIndex::Any, v, w));
                        break;
                    }
                }
            }
            1 => {
                let start = rng.random_range(0..n);
                'scan: for off in 0..n {
                    let v = (start + off) % n;
                    let row = model.successors_dense(0, v as usize);
                    for &w in row {
                        let dup = spec.remove.iter().any(|&(_, a, b)| (a, b) == (v, w))
                            || touches_crash(&spec, v, w);
                        if !dup {
                            spec.remove.push((ModalIndex::Any, v, w));
                            break 'scan;
                        }
                    }
                }
            }
            2 => spec.valuation.push((rng.random_range(0..n), rng.random_range(0..5u64))),
            _ => {
                for _ in 0..4 {
                    let c = rng.random_range(0..n);
                    let clash = spec.crash.contains(&c)
                        || spec.add.iter().any(|&(_, a, b)| a == c || b == c)
                        || spec.remove.iter().any(|&(_, a, b)| a == c || b == c);
                    if !clash {
                        spec.crash.push(c);
                        break;
                    }
                }
            }
        }
    }
    if spec.edit_count() == 0 {
        spec.valuation.push((0, 1));
    }
    spec
}
