//! End-to-end differential test (satellite 1 of ISSUE 9): eight client
//! threads drive randomized load / check / delta / evict scripts
//! against an in-process server, and **every** response must be
//! bit-identical to a single-threaded oracle — a local [`Kripke`] plus
//! a detach/resume [`ModelChecker`] — replaying the same per-model op
//! sequence.
//!
//! Model ids are disjoint per thread, so each model's op sequence *is*
//! its client's script: the shard serialises it, and any cross-model
//! interference (shared worker pool, shard-level caches, concurrent
//! connections) would surface as a bit mismatch. Formula batches are
//! answered through the server's coalesced suite path while the oracle
//! runs one plain `check_suite` — pinning that batching is purely a
//! throughput transform.

mod common;

use common::{random_delta, random_formula, Oracle};
use portnum_logic::Formula;
use portnum_serve::{Client, ClientError, ErrorCode, ModelSpec, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const THREADS: u64 = 8;
const OPS_PER_THREAD: usize = 60;

fn expect_code(result: Result<impl std::fmt::Debug, ClientError>, code: ErrorCode) {
    match result {
        Err(ClientError::Server(e)) if e.code == code => {}
        other => panic!("expected a {code:?} error frame, got {other:?}"),
    }
}

/// One client thread's script over its two private model ids.
fn client_script(addr: std::net::SocketAddr, idx: u64, shards: u64) {
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9 ^ idx);
    let mut client = Client::connect(addr).expect("connecting");
    let mut oracles: HashMap<u64, Oracle> = HashMap::new();

    for id in [idx * 2, idx * 2 + 1] {
        let spec = ModelSpec::gnp(32 + id as usize as u64, 0.12, 1000 + id);
        let oracle = Oracle::load(&spec);
        let (worlds, version) = client.load(id, &spec).expect("initial load");
        assert_eq!(worlds, oracle.model.len() as u64);
        assert_eq!(version, oracle.model.version());
        oracles.insert(id, oracle);
    }

    for _ in 0..OPS_PER_THREAD {
        let id = idx * 2 + rng.random_range(0..2u64);
        match rng.random_range(0..10u8) {
            // Checks dominate the mix; ~1 in 12 batches carries a
            // family-mismatched formula to pin error parity.
            0..=4 => {
                let valid = !rng.random_bool(1.0 / 12.0);
                let batch: Vec<Formula> = (0..rng.random_range(1..5usize))
                    .map(|_| random_formula(&mut rng, 3, valid))
                    .collect();
                let oracle = oracles.get_mut(&id).expect("loaded");
                match (client.check(id, &batch), oracle.check(&batch)) {
                    (Ok(truths), Ok(words)) => {
                        assert_eq!(truths.worlds, oracle.model.len() as u64);
                        assert_eq!(truths.vectors, words, "bit mismatch on model {id}");
                    }
                    (Err(ClientError::Server(e)), Err(())) => {
                        assert_eq!(e.code, ErrorCode::Logic);
                    }
                    (server, oracle) => {
                        panic!("server {server:?} disagrees with oracle {oracle:?}")
                    }
                }
            }
            5 | 6 => {
                let oracle = oracles.get_mut(&id).expect("loaded");
                let spec = random_delta(&mut rng, &oracle.model);
                let (version, touched) = client.apply_delta(id, &spec).expect("valid delta");
                let oracle_touched = oracle.apply(&spec);
                assert_eq!(version, oracle.model.version(), "version skew on model {id}");
                assert_eq!(touched, oracle_touched.len() as u64);
            }
            7 => {
                // Evict, observe the typed miss, reload from the
                // oracle's snapshot (the `Edges` spec path).
                assert!(client.evict(id).expect("evict answers"));
                expect_code(client.check(id, &[Formula::prop(0)]), ErrorCode::NoSuchModel);
                let oracle = oracles.get_mut(&id).expect("loaded");
                let spec = ModelSpec::from_model(&oracle.model);
                let (worlds, version) = client.load(id, &spec).expect("reload");
                *oracle = Oracle::load(&spec);
                assert_eq!(worlds, oracle.model.len() as u64);
                assert_eq!(version, oracle.model.version());
            }
            8 => {
                // In-place replacement: a load over a live id drops the
                // old model and its cache.
                let spec = ModelSpec::gnp(24 + (id % 8) * 4, 0.15, rng.random::<u64>());
                let (worlds, version) = client.load(id, &spec).expect("replace");
                let oracle = Oracle::load(&spec);
                assert_eq!(worlds, oracle.model.len() as u64);
                assert_eq!(version, oracle.model.version());
                oracles.insert(id, oracle);
            }
            _ => {
                client.ping().expect("ping");
                let stats = client.stats().expect("stats");
                assert_eq!(stats.shards, shards);
                assert_eq!(stats.protocol_errors, 0);
                assert_eq!(stats.internal_errors, 0);
            }
        }
    }
}

#[test]
fn concurrent_clients_match_the_single_threaded_oracle() {
    // Base on the environment so the `PORTNUM_SERVE_SHARDS=1` CI leg
    // reaches this suite (collapsing every model onto one queue);
    // under the default config the 16 ids spread over 4 shards.
    let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::from_env() };
    let shards = cfg.shards as u64;
    let mut server = Server::start(cfg).expect("binding an ephemeral port");
    let addr = server.addr();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|idx| scope.spawn(move || client_script(addr, idx, shards)))
            .collect();
        for handle in handles {
            handle.join().expect("client script succeeds");
        }
    });

    // The server end state agrees with the scripts: every model still
    // loaded, nothing shed or interrupted, no surviving panics.
    let mut client = Client::connect(addr).expect("connecting");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.models, THREADS * 2);
    assert!(stats.checks > 0 && stats.deltas > 0 && stats.loads >= THREADS * 2);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.interrupted, 0);
    assert_eq!(stats.internal_errors, 0);
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();
}
