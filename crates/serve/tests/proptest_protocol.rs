//! Property tests for the wire protocol (satellite 2 of ISSUE 9):
//!
//! * **round-trip**: `decode(encode(x)) == x` for every frame type,
//!   request and response, over randomized payloads (formula batches
//!   included — formulas travel as their `Display` rendering, so this
//!   also re-pins the parser round-trip through the wire);
//! * **hardening**: truncated bodies (every proper prefix), trailing
//!   bytes, unknown opcodes, hostile element counts, oversized length
//!   prefixes, and arbitrary byte soup all yield *typed*
//!   [`ProtocolError`]s — never a panic, and (checked live at the
//!   bottom) never a desynchronised connection.

use portnum_logic::{Formula, ModalIndex, ModelVariant};
use portnum_serve::framing::{read_frame, write_frame, FrameError};
use portnum_serve::protocol::MAX_FRAME_LEN;
use portnum_serve::{
    DeltaSpec, ErrorCode, ErrorFrame, ModelSpec, ProtocolError, Request, Response, ServeConfig,
    Server, ServerStats,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn arb_index() -> impl Strategy<Value = ModalIndex> {
    prop_oneof![
        Just(ModalIndex::Any),
        (0usize..4, 0usize..4).prop_map(|(i, j)| ModalIndex::InOut(i, j)),
        (0usize..4).prop_map(ModalIndex::Out),
        (0usize..4).prop_map(ModalIndex::In),
    ]
}

fn arb_variant() -> impl Strategy<Value = ModelVariant> {
    prop_oneof![
        Just(ModelVariant::PlusPlus),
        Just(ModelVariant::MinusPlus),
        Just(ModelVariant::PlusMinus),
        Just(ModelVariant::MinusMinus),
    ]
}

/// Wraps a closed formula in a reachability-shaped binder, picking the
/// first variable name `f` does not already bind (nesting depth is
/// bounded well below the candidate list, so one is always fresh).
fn bind_fixpoint(greatest: bool, index: ModalIndex, f: &Formula) -> Formula {
    ["X", "Y", "Z", "W", "V"]
        .iter()
        .find_map(|name| {
            let body = f.or(&Formula::diamond(index, &Formula::var(name)));
            if greatest { Formula::nu(name, &body).ok() } else { Formula::mu(name, &body).ok() }
        })
        .expect("some candidate name is fresh")
}

/// Random formulas over every index family — the protocol ships them
/// as strings, so the distribution only needs to cover the grammar,
/// µ/ν binders included.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::top()),
        Just(Formula::bottom()),
        (0usize..=4).prop_map(Formula::prop),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(&b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(&b)),
            (arb_index(), 0usize..=3, inner.clone())
                .prop_map(|(index, k, f)| Formula::diamond_geq(index, k, &f)),
            (any::<bool>(), arb_index(), inner)
                .prop_map(|(greatest, index, f)| bind_fixpoint(greatest, index, &f)),
        ]
    })
}

fn arb_spec() -> impl Strategy<Value = ModelSpec> {
    let edges = (
        arb_variant(),
        0u64..64,
        prop_oneof![
            Just(None),
            proptest::collection::vec(0u64..16, 0..6).prop_map(Some),
        ],
        proptest::collection::vec(
            (arb_index(), proptest::collection::vec((0u32..64, 0u32..64), 0..8)),
            0..3,
        ),
    )
        .prop_map(|(variant, n, degrees, relations)| ModelSpec::Edges {
            variant,
            n,
            degrees,
            relations,
        });
    prop_oneof![
        edges,
        (0u64..4096).prop_map(|n| ModelSpec::Path { n }),
        (0u64..4096, any::<u64>(), any::<u64>())
            .prop_map(|(n, p_bits, seed)| ModelSpec::Gnp { n, p_bits, seed }),
    ]
}

fn arb_delta() -> impl Strategy<Value = DeltaSpec> {
    (
        proptest::collection::vec((arb_index(), 0u32..64, 0u32..64), 0..5),
        proptest::collection::vec((arb_index(), 0u32..64, 0u32..64), 0..5),
        proptest::collection::vec((0u32..64, any::<u64>()), 0..5),
        proptest::collection::vec(0u32..64, 0..5),
    )
        .prop_map(|(add, remove, valuation, crash)| DeltaSpec { add, remove, valuation, crash })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        (any::<u64>(), arb_spec()).prop_map(|(model, spec)| Request::Load { model, spec }),
        any::<u64>().prop_map(|model| Request::Evict { model }),
        (any::<u64>(), proptest::collection::vec(arb_formula(), 0..5))
            .prop_map(|(model, formulas)| Request::Check { model, formulas }),
        (any::<u64>(), arb_delta()).prop_map(|(model, delta)| Request::Delta { model, delta }),
    ]
}

/// ASCII plus a fixed non-ASCII salt: exercises the UTF-8 path without
/// needing a full `char` strategy.
fn arb_message() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::collection::vec(0x20u8..0x7f, 0..24)
            .prop_map(|b| String::from_utf8(b).expect("printable ASCII")),
        Just("K₋,₋ ⟨⟩≥2 — ünïcode payload".to_string()),
    ]
}

fn arb_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Protocol),
        Just(ErrorCode::NoSuchModel),
        Just(ErrorCode::Logic),
        Just(ErrorCode::Cancelled),
        Just(ErrorCode::DeadlineExceeded),
        Just(ErrorCode::BudgetExceeded),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Internal),
    ]
}

fn arb_stats() -> impl Strategy<Value = ServerStats> {
    proptest::collection::vec(any::<u64>(), ServerStats::FIELDS).prop_map(|v| ServerStats {
        shards: v[0],
        models: v[1],
        mem_bytes: v[2],
        mem_budget: v[3],
        loads: v[4],
        evictions: v[5],
        cache_trims: v[6],
        checks: v[7],
        formulas_checked: v[8],
        deltas: v[9],
        shed: v[10],
        interrupted: v[11],
        internal_errors: v[12],
        protocol_errors: v[13],
        pool_workers: v[14],
        pool_dispatch_cost_ns: v[15],
        pool_respawns: v[16],
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(model, worlds, version)| Response::Loaded { model, worlds, version }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(model, existed)| Response::Evicted { model, existed }),
        (
            any::<u64>(),
            proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..5), 0..5)
        )
            .prop_map(|(worlds, vectors)| Response::Truths { worlds, vectors }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(model, version, touched)| {
            Response::DeltaApplied { model, version, touched }
        }),
        arb_stats().prop_map(Response::Stats),
        (arb_code(), arb_message())
            .prop_map(|(code, message)| Response::Error(ErrorFrame { code, message })),
    ]
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn request_round_trips(req in arb_request()) {
        let body = req.encode();
        prop_assert_eq!(Request::decode(&body), Ok(req));
    }

    #[test]
    fn response_round_trips(resp in arb_response()) {
        let body = resp.encode();
        prop_assert_eq!(Response::decode(&body), Ok(resp));
    }

    /// Every proper prefix of a valid body fails with `Truncated`: the
    /// cut removes only trailing bytes, so the decoder replays the
    /// same reads until one crosses the cut — and counts are checked
    /// against the bytes actually present before anything allocates.
    #[test]
    fn truncated_request_is_typed(req in arb_request()) {
        let body = req.encode();
        for cut in 0..body.len() {
            prop_assert_eq!(
                Request::decode(&body[..cut]),
                Err(ProtocolError::Truncated),
                "cut at {} of {}",
                cut,
                body.len()
            );
        }
    }

    #[test]
    fn truncated_response_is_typed(resp in arb_response()) {
        let body = resp.encode();
        for cut in 0..body.len() {
            prop_assert_eq!(
                Response::decode(&body[..cut]),
                Err(ProtocolError::Truncated),
                "cut at {} of {}",
                cut,
                body.len()
            );
        }
    }

    #[test]
    fn trailing_bytes_are_typed(req in arb_request(), junk in 1u8..=255) {
        let mut body = req.encode();
        body.push(junk);
        prop_assert_eq!(Request::decode(&body), Err(ProtocolError::TrailingBytes));
    }

    /// Request opcodes stop at 0x06; everything above (response
    /// opcodes included — the planes are disjoint) is typed.
    #[test]
    fn unknown_request_opcode_is_typed(op in 0x07u8..=0xff, tail in proptest::collection::vec(any::<u8>(), 0..8)) {
        let mut body = vec![op];
        body.extend(tail);
        prop_assert_eq!(Request::decode(&body), Err(ProtocolError::UnknownOpcode(op)));
    }

    #[test]
    fn unknown_response_opcode_is_typed(op in 0x00u8..=0x80, tail in proptest::collection::vec(any::<u8>(), 0..8)) {
        let mut body = vec![op];
        body.extend(tail);
        prop_assert_eq!(Response::decode(&body), Err(ProtocolError::UnknownOpcode(op)));
    }

    /// Decoding is total: arbitrary byte soup yields `Ok` or a typed
    /// error, never a panic (the `proptest!` harness would report it).
    #[test]
    fn byte_soup_never_panics(soup in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = Request::decode(&soup);
        let _ = Response::decode(&soup);
    }

    /// An oversized length prefix is rejected *before* any allocation,
    /// as a protocol (not transport) error.
    #[test]
    fn oversized_prefix_is_typed(len in (MAX_FRAME_LEN as u32 + 1)..=u32::MAX) {
        let mut wire: &[u8] = &len.to_le_bytes();
        match read_frame(&mut wire) {
            Err(FrameError::Protocol(ProtocolError::FrameTooLarge(l))) => {
                prop_assert_eq!(l, u64::from(len));
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    /// Frames written back-to-back stay framed: a reader recovers each
    /// body byte-exactly and then sees the clean end of stream.
    #[test]
    fn frames_stay_in_sync(reqs in proptest::collection::vec(arb_request(), 1..5)) {
        let mut wire = Vec::new();
        for req in &reqs {
            write_frame(&mut wire, &req.encode()).expect("Vec writes are infallible");
        }
        let mut rd: &[u8] = &wire;
        for req in &reqs {
            let body = read_frame(&mut rd).expect("framed").expect("not EOF");
            prop_assert_eq!(Request::decode(&body).as_ref(), Ok(req));
        }
        prop_assert!(read_frame(&mut rd).expect("clean end").is_none());
    }
}

// ---------------------------------------------------------------------
// Live hardening: the typed errors above, observed through a server
// ---------------------------------------------------------------------

/// A malformed (but correctly framed) body gets an error frame and the
/// connection keeps serving — the frame boundary was never in doubt.
#[test]
fn malformed_body_then_ping_keeps_the_connection() {
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::from_env()
    })
    .expect("binding an ephemeral port");
    let stream = std::net::TcpStream::connect(server.addr()).expect("connecting");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("cloning"));
    let mut writer = std::io::BufWriter::new(stream);

    write_frame(&mut writer, &[0xff, 0x01, 0x02]).expect("writing the bad frame");
    let body = read_frame(&mut reader).expect("reading").expect("a frame");
    match Response::decode(&body).expect("decodable error frame") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
        other => panic!("expected a protocol error frame, got {other:?}"),
    }

    write_frame(&mut writer, &Request::Ping.encode()).expect("writing the ping");
    let body = read_frame(&mut reader).expect("reading").expect("a frame");
    assert_eq!(Response::decode(&body), Ok(Response::Pong));
    server.shutdown();
}

/// Unparseable formula strings inside a well-framed `Check` body — an
/// unbound variable and a shadowed binder — answer a *typed* protocol
/// error frame (the decoder's `BadFormula` path), and the connection
/// keeps serving afterwards. Hand-encoded so the test exercises the
/// wire shape directly, not `Request::encode` (which cannot produce
/// these bodies: the `Formula` constructors already reject them).
#[test]
fn bad_formula_strings_answer_typed_errors_and_keep_serving() {
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::from_env()
    })
    .expect("binding an ephemeral port");
    let stream = std::net::TcpStream::connect(server.addr()).expect("connecting");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("cloning"));
    let mut writer = std::io::BufWriter::new(stream);

    for bad in ["X", "mu X . mu X . X", "mu X . !X", "mu X . q1 | Y"] {
        // Check = opcode 0x04, model id u64 LE, formula count u32 LE,
        // then each formula as a u32 LE length + UTF-8 bytes.
        let mut body = vec![0x04u8];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&(bad.len() as u32).to_le_bytes());
        body.extend_from_slice(bad.as_bytes());

        write_frame(&mut writer, &body).expect("writing the check frame");
        let reply = read_frame(&mut reader).expect("reading").expect("a frame");
        match Response::decode(&reply).expect("decodable error frame") {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::Protocol, "formula {bad:?}");
                assert!(
                    e.message.contains("unparseable formula"),
                    "want the BadFormula rendering for {bad:?}, got {:?}",
                    e.message
                );
            }
            other => panic!("expected a protocol error frame for {bad:?}, got {other:?}"),
        }
    }

    write_frame(&mut writer, &Request::Ping.encode()).expect("writing the ping");
    let body = read_frame(&mut reader).expect("reading").expect("a frame");
    assert_eq!(Response::decode(&body), Ok(Response::Pong));
    server.shutdown();
}

/// An oversized length prefix gets one error frame and then the close:
/// past a corrupt prefix there is no boundary left to trust.
#[test]
fn oversized_prefix_closes_the_connection() {
    use std::io::Write;

    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::from_env()
    })
    .expect("binding an ephemeral port");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connecting");
    stream.write_all(&u32::MAX.to_le_bytes()).expect("writing the corrupt prefix");
    stream.flush().expect("flushing");

    let mut reader = std::io::BufReader::new(stream.try_clone().expect("cloning"));
    let body = read_frame(&mut reader).expect("reading").expect("a frame");
    match Response::decode(&body).expect("decodable error frame") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
        other => panic!("expected a protocol error frame, got {other:?}"),
    }
    // Then EOF: the server hung up rather than guess at a boundary.
    assert!(read_frame(&mut reader).expect("clean close").is_none());
    server.shutdown();
}
