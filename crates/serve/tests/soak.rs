//! Soak/stress leg (satellite 4 of ISSUE 9): sustained mixed
//! check + delta traffic against `gnp512` and `path4096` on a server
//! whose memory budget cannot hold both models at once — the LRU
//! evictor thrashes by design. Over the whole run (default 60 s,
//! `PORTNUM_SOAK_SECS` overrides; CI runs this `--release`):
//!
//! * **zero protocol desyncs** — every frame decodes (a desync would
//!   panic a client thread) and the server's `protocol_errors` counter
//!   stays at zero;
//! * **monotone version stamps** — per model, every committed delta's
//!   version is strictly greater than the last observed one (resets
//!   only at an observed reload);
//! * **eviction never exceeds the memory budget** — `mem_bytes` is
//!   polled throughout and must stay under `mem_budget`;
//! * writer responses stay bit-identical to the single-threaded
//!   oracle even while readers thrash the caches from other
//!   connections.
//!
//! Ignored by default: this test exists to burn wall-clock.

mod common;

use common::{random_delta, random_formula, Oracle};
use portnum_logic::Formula;
use portnum_serve::{Client, ClientError, ErrorCode, ModelSpec, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Small enough that gnp512 (~60 kB) and path4096 (~98 kB) cannot both
/// stay resident, large enough that each fits alone.
const MEM_BUDGET: usize = 140_000;

fn soak_duration() -> Duration {
    let secs = match std::env::var("PORTNUM_SOAK_SECS") {
        Ok(v) => v.parse().expect("PORTNUM_SOAK_SECS must be an integer second count"),
        Err(_) => 60,
    };
    Duration::from_secs(secs)
}

/// The model under id 0 (~60 kB resident).
fn gnp512() -> ModelSpec {
    ModelSpec::gnp(512, 0.05, 0x512)
}

/// The model under id 1 (~98 kB resident).
fn path4096() -> ModelSpec {
    ModelSpec::Path { n: 4096 }
}

struct WriterReport {
    checks: u64,
    deltas: u64,
    reloads: u64,
}

/// The designated writer for one model id: the only thread mutating
/// it, so the oracle replay is exact. A server-side LRU eviction
/// surfaces as `NoSuchModel` and is answered by reloading the oracle's
/// snapshot (resetting the version baseline).
fn writer(
    addr: std::net::SocketAddr,
    id: u64,
    spec: &ModelSpec,
    stop: &AtomicBool,
) -> WriterReport {
    let mut rng = StdRng::seed_from_u64(0x50ac ^ id);
    let mut client = Client::connect(addr).expect("connecting");
    let mut oracle = Oracle::load(spec);
    let worlds = oracle.model.len() as u64;
    let (loaded, mut last_version) = client.load(id, spec).expect("initial load");
    assert_eq!(loaded, worlds);
    let mut report = WriterReport { checks: 0, deltas: 0, reloads: 0 };

    let reload = |client: &mut Client, oracle: &mut Oracle, report: &mut WriterReport| {
        let snapshot = ModelSpec::from_model(&oracle.model);
        let (loaded, version) = client.load(id, &snapshot).expect("reload");
        assert_eq!(loaded, worlds);
        *oracle = Oracle::load(&snapshot);
        report.reloads += 1;
        version
    };

    while !stop.load(Ordering::Relaxed) {
        match rng.random_range(0..10u8) {
            0..=6 => {
                let batch: Vec<Formula> = (0..rng.random_range(1..4usize))
                    .map(|_| random_formula(&mut rng, 2, true))
                    .collect();
                match client.check(id, &batch) {
                    Ok(truths) => {
                        let words = oracle.check(&batch).expect("valid formulas");
                        assert_eq!(truths.worlds, worlds);
                        assert_eq!(truths.vectors, words, "bit mismatch on model {id}");
                        report.checks += 1;
                    }
                    Err(ClientError::Server(e)) if e.code == ErrorCode::NoSuchModel => {
                        last_version = reload(&mut client, &mut oracle, &mut report);
                    }
                    other => panic!("writer {id} check failed: {other:?}"),
                }
            }
            7 | 8 => {
                let delta = random_delta(&mut rng, &oracle.model);
                match client.apply_delta(id, &delta) {
                    Ok((version, touched)) => {
                        let oracle_touched = oracle.apply(&delta);
                        assert!(
                            version > last_version,
                            "model {id} version went {last_version} -> {version}"
                        );
                        assert_eq!(version, oracle.model.version());
                        assert_eq!(touched, oracle_touched.len() as u64);
                        last_version = version;
                        report.deltas += 1;
                    }
                    Err(ClientError::Server(e)) if e.code == ErrorCode::NoSuchModel => {
                        last_version = reload(&mut client, &mut oracle, &mut report);
                    }
                    other => panic!("writer {id} delta failed: {other:?}"),
                }
            }
            _ => {
                // Explicit evict (racing the LRU: both outcomes fine),
                // then reload from the snapshot.
                client.evict(id).expect("evict answers");
                last_version = reload(&mut client, &mut oracle, &mut report);
            }
        }
    }
    report
}

/// Readers thrash both models from their own connections. They cannot
/// predict bits (the writers mutate concurrently) but every response
/// must be well-formed: the right world count, the right vector count
/// and word length, or the one legitimate typed error.
fn reader(addr: std::net::SocketAddr, stop: &AtomicBool, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = Client::connect(addr).expect("connecting");
    let mut served = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let id = rng.random_range(0..2u64);
        let worlds: usize = if id == 0 { 512 } else { 4096 };
        let batch: Vec<Formula> =
            (0..rng.random_range(1..4usize)).map(|_| random_formula(&mut rng, 2, true)).collect();
        match client.check(id, &batch) {
            Ok(truths) => {
                assert_eq!(truths.worlds, worlds as u64);
                assert_eq!(truths.vectors.len(), batch.len());
                for v in &truths.vectors {
                    assert_eq!(v.len(), worlds.div_ceil(64));
                }
                served += 1;
            }
            Err(ClientError::Server(e)) if e.code == ErrorCode::NoSuchModel => {}
            other => panic!("reader hit {other:?}"),
        }
        if rng.random_bool(0.05) {
            client.ping().expect("ping");
        }
    }
    served
}

#[test]
#[ignore = "wall-clock soak; run with --ignored (PORTNUM_SOAK_SECS overrides the 60 s default)"]
fn soak_mixed_traffic_holds_every_invariant() {
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        mem_budget: MEM_BUDGET,
        ..ServeConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = server.addr();
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + soak_duration();

    let (w0, w1, r0, r1) = std::thread::scope(|scope| {
        let stop = &stop;
        let w0 = scope.spawn(move || writer(addr, 0, &gnp512(), stop));
        let w1 = scope.spawn(move || writer(addr, 1, &path4096(), stop));
        let r0 = scope.spawn(move || reader(addr, stop, 0xbeef));
        let r1 = scope.spawn(move || reader(addr, stop, 0xcafe));

        // The monitor: the budget invariant must hold at every sample,
        // not just at the end.
        let mut monitor = Client::connect(addr).expect("connecting the monitor");
        while Instant::now() < deadline {
            let stats = monitor.stats().expect("stats");
            assert!(
                stats.mem_bytes <= stats.mem_budget,
                "resident {} B over the {} B budget",
                stats.mem_bytes,
                stats.mem_budget
            );
            assert_eq!(stats.protocol_errors, 0, "protocol desync under load");
            assert_eq!(stats.internal_errors, 0, "shard panic under load");
            std::thread::sleep(Duration::from_millis(100));
        }
        stop.store(true, Ordering::Relaxed);
        (
            w0.join().expect("writer 0"),
            w1.join().expect("writer 1"),
            r0.join().expect("reader 0"),
            r1.join().expect("reader 1"),
        )
    });

    let mut client = Client::connect(addr).expect("connecting");
    let stats = client.stats().expect("final stats");
    assert!(stats.evictions > 0, "the budget never forced an eviction — soak had no teeth");
    assert!(stats.mem_bytes <= stats.mem_budget);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.internal_errors, 0);
    for (name, report) in [("gnp512", &w0), ("path4096", &w1)] {
        assert!(
            report.checks > 0 && report.deltas > 0,
            "{name} writer starved: {} checks, {} deltas",
            report.checks,
            report.deltas
        );
    }
    assert!(r0 + r1 > 0, "readers starved");
    println!(
        "soak: {} + {} writer checks, {} + {} deltas, {} + {} reloads, {} reader checks, \
         {} evictions, {} cache trims",
        w0.checks,
        w1.checks,
        w0.deltas,
        w1.deltas,
        w0.reloads,
        w1.reloads,
        r0 + r1,
        stats.evictions,
        stats.cache_trims
    );
    server.shutdown();
}
