//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of `criterion` its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `bench_with_input` /
//! `bench_function`, `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock sampling: after a warm-up period, each
//! benchmark runs `sample_size` samples (batching iterations so a sample
//! lasts long enough to time reliably) and reports min / median / mean.
//! Passing `--test` (as `cargo bench -- --test` does) runs every closure
//! exactly once and skips measurement — the CI smoke mode. `--save-json
//! PATH` appends one JSON line per benchmark for trend tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, re-exported for benches.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    TestOnce,
}

/// One benchmark's measured statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
}

impl<'a> Bencher<'a> {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::TestOnce {
            std_black_box(routine());
            return;
        }
        // Warm-up, and estimate the per-iteration cost while at it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Pick a batch size so one sample lasts ≥ ~50µs (timer resolution)
        // while the whole measurement fits the configured budget.
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = (budget_ns / per_iter.max(1.0)).clamp(1.0, 1e9) as u64;
        let batch = batch.max((50_000.0 / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        *self.result = Some(Sample { min_ns: min, median_ns: median, mean_ns: mean });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, id: String, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut result = None;
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            result: &mut result,
        };
        f(&mut bencher);
        match (self.criterion.mode, result) {
            (Mode::TestOnce, _) => println!("test {full} ... ok"),
            (Mode::Measure, Some(s)) => {
                println!(
                    "{full:<60} time: [{} {} {}]",
                    fmt_ns(s.min_ns),
                    fmt_ns(s.median_ns),
                    fmt_ns(s.mean_ns)
                );
                self.criterion.records.push((full, s));
            }
            (Mode::Measure, None) => println!("{full:<60} (no measurement)"),
        }
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id: BenchmarkId = id.into();
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id: BenchmarkId = id.into();
        self.run_one(id.to_string(), |b| f(b));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mode: Mode,
    filter: Option<String>,
    save_json: Option<String>,
    records: Vec<(String, Sample)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        let mut save_json = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => mode = Mode::TestOnce,
                "--save-json" => save_json = args.next(),
                // Flags cargo/criterion CLIs pass that we accept silently.
                "--bench" | "--verbose" | "--quiet" | "-n" | "--noplot" => {}
                s if s.starts_with("--") => {
                    // Unknown option: skip a value if one follows.
                    if args.peek().map(|a| !a.starts_with('-')).unwrap_or(false) {
                        args.next();
                    }
                }
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            mode,
            filter,
            save_json,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(BenchmarkId { id: String::new() }, f);
        self
    }

    /// Writes accumulated results as JSON lines if `--save-json` was given.
    /// Called by `criterion_main!`.
    pub fn final_summary(&mut self) {
        let Some(path) = &self.save_json else { return };
        let mut out = String::new();
        for (name, s) in &self.records {
            let _ = writeln!(
                out,
                "{{\"id\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1}}}",
                name.replace('"', "'"),
                s.min_ns,
                s.median_ns,
                s.mean_ns
            );
        }
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}

/// Declares a benchmark group, optionally with a custom `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(mode: Mode) -> Criterion {
        Criterion {
            sample_size: 5,
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            mode,
            filter: None,
            save_json: None,
            records: Vec::new(),
        }
    }

    #[test]
    fn measures_something() {
        let mut c = make(Mode::Measure);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].0.contains("g/f/1"));
        assert!(c.records[0].1.median_ns > 0.0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = make(Mode::TestOnce);
        let mut count = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("once", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
        assert!(c.records.is_empty());
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("plain_kmm", "gnp32").to_string(), "plain_kmm/gnp32");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
