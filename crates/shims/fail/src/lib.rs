//! Offline drop-in subset of the [tikv/fail-rs] failpoint API.
//!
//! A *failpoint* is a named site in library code where a test (or an
//! operator, via `PORTNUM_FAILPOINTS`) can inject a fault: a panic, a
//! delay, or an arbitrary callback. Sites are compiled in permanently —
//! there is no cargo feature gate — and the disabled-path cost is one
//! relaxed atomic load of a global counter, so production code pays
//! essentially nothing when no failpoint is active.
//!
//! Supported action grammar (a subset of fail-rs, plus `cancel` which
//! this workspace's chaos harness maps to a callback):
//!
//! ```text
//! actions   := action ( "->" action )*        (fired left to right)
//! action    := [ count "*" ] kind
//! kind      := "panic" | "panic(" msg ")"
//!            | "sleep(" millis ")" | "delay(" millis ")"
//!            | "return" | "return(" value ")"
//!            | "print" | "print(" msg ")"
//!            | "off"
//! ```
//!
//! A `count` prefix (`2*panic`) fires the action that many times and
//! then falls through to the next action in the chain (or to no-op).
//! `return` makes [`eval`] yield `Some(value)` — the macro caller maps
//! that to an early return; sites in this workspace use it to make a
//! worker thread exit so pool self-healing can be exercised.
//!
//! Environment activation: `PORTNUM_FAILPOINTS=site=action;site2=action`
//! is parsed once by [`setup_from_env`] (the first call wins; later
//! calls are no-ops). Malformed specs panic — same contract as every
//! other `PORTNUM_*` knob in this workspace.
//!
//! [tikv/fail-rs]: https://github.com/tikv/fail-rs

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Number of currently registered (active) failpoints. The fast path in
/// [`eval`] is a single relaxed load of this counter; while it is zero
/// every site is a no-op.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

type Callback = Box<dyn Fn() + Send + Sync>;

enum ActionKind {
    Panic(Option<String>),
    Sleep(Duration),
    Return(Option<String>),
    Print(Option<String>),
    Callback(Callback),
    Off,
}

struct Action {
    /// Remaining firings before this action deactivates; `None` means
    /// unlimited.
    remaining: Option<usize>,
    kind: ActionKind,
}

struct Registry {
    sites: HashMap<String, Vec<Action>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry { sites: HashMap::new() }))
}

fn parse_action(spec: &str) -> Result<Action, String> {
    let spec = spec.trim();
    let (remaining, body) = match spec.split_once('*') {
        Some((count, rest)) => {
            let n = count
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad failpoint count {count:?} in {spec:?}"))?;
            (Some(n), rest.trim())
        }
        None => (None, spec),
    };
    let (name, arg) = match body.split_once('(') {
        Some((name, rest)) => {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unbalanced parenthesis in failpoint action {spec:?}"))?;
            (name.trim(), Some(inner.to_string()))
        }
        None => (body, None),
    };
    let kind = match name {
        "panic" => ActionKind::Panic(arg),
        "sleep" | "delay" => {
            let ms = arg
                .as_deref()
                .unwrap_or("")
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad millis in failpoint action {spec:?}"))?;
            ActionKind::Sleep(Duration::from_millis(ms))
        }
        "return" => ActionKind::Return(arg),
        "print" => ActionKind::Print(arg),
        "off" => ActionKind::Off,
        other => return Err(format!("unknown failpoint action {other:?} in {spec:?}")),
    };
    Ok(Action { remaining, kind })
}

fn parse_actions(spec: &str) -> Result<Vec<Action>, String> {
    spec.split("->").map(parse_action).collect()
}

fn set_parsed(site: &str, actions: Vec<Action>) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if reg.sites.insert(site.to_string(), actions).is_none() {
        ACTIVE.fetch_add(1, Ordering::Release);
    }
}

/// Activates `site` with the given action spec (see the module docs for
/// the grammar). Replaces any previous configuration for the site.
///
/// # Errors
///
/// Returns a description of the malformed spec without touching the
/// registry.
pub fn cfg<S: AsRef<str>>(site: S, actions: &str) -> Result<(), String> {
    let parsed = parse_actions(actions)?;
    set_parsed(site.as_ref(), parsed);
    Ok(())
}

/// Activates `site` with an arbitrary callback, fired on every hit
/// until [`remove`] (or an `off`/count-exhausted reconfiguration).
/// The chaos harness uses this to cancel a `CancelToken`-like flag
/// from inside a deterministic execution point.
pub fn cfg_callback<S: AsRef<str>, F>(site: S, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    set_parsed(
        site.as_ref(),
        vec![Action { remaining: None, kind: ActionKind::Callback(Box::new(f)) }],
    );
}

/// Deactivates `site`. No-op if the site was not active.
pub fn remove<S: AsRef<str>>(site: S) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if reg.sites.remove(site.as_ref()).is_some() {
        ACTIVE.fetch_sub(1, Ordering::Release);
    }
}

/// Deactivates every site (test teardown helper).
pub fn teardown() {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let n = reg.sites.len();
    reg.sites.clear();
    ACTIVE.fetch_sub(n, Ordering::Release);
}

/// Returns the currently active site names, sorted (diagnostics).
pub fn list() -> Vec<String> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let mut names: Vec<String> = reg.sites.keys().cloned().collect();
    names.sort();
    names
}

/// Parses `PORTNUM_FAILPOINTS` (format `site=action;site=action`) once
/// per process and activates the listed sites. Later calls are no-ops.
/// Malformed specs panic — the same parse-or-panic contract as the
/// other `PORTNUM_*` knobs.
pub fn setup_from_env() {
    static DONE: OnceLock<()> = OnceLock::new();
    DONE.get_or_init(|| {
        if let Ok(spec) = std::env::var("PORTNUM_FAILPOINTS") {
            for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
                let (site, actions) = entry
                    .split_once('=')
                    .unwrap_or_else(|| panic!("PORTNUM_FAILPOINTS entry {entry:?} missing '='"));
                cfg(site.trim(), actions.trim())
                    .unwrap_or_else(|e| panic!("PORTNUM_FAILPOINTS: {e}"));
            }
        }
    });
}

/// Evaluates the failpoint named `site`. Returns `Some(value)` when a
/// `return` action fired (the `fail_point!` macro maps this to an early
/// return at the call site); `None` otherwise. Disabled sites cost one
/// relaxed atomic load.
pub fn eval(site: &str) -> Option<String> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    // Resolve the action under the lock, but *fire* it outside so a
    // panicking or sleeping action never holds the registry mutex.
    enum Fire {
        Panic(Option<String>),
        Sleep(Duration),
        Return(Option<String>),
        Print(Option<String>),
        Callback,
    }
    let fire = {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let actions = reg.sites.get_mut(site)?;
        let mut fire = None;
        for action in actions.iter_mut() {
            match action.remaining {
                Some(0) => continue,
                Some(ref mut n) => *n -= 1,
                None => {}
            }
            fire = Some(match &action.kind {
                ActionKind::Panic(msg) => Fire::Panic(msg.clone()),
                ActionKind::Sleep(d) => Fire::Sleep(*d),
                ActionKind::Return(v) => Fire::Return(v.clone()),
                ActionKind::Print(msg) => Fire::Print(msg.clone()),
                ActionKind::Callback(_) => Fire::Callback,
                ActionKind::Off => return None,
            });
            break;
        }
        fire
    };
    match fire? {
        Fire::Panic(msg) => {
            let msg = msg.unwrap_or_else(|| format!("failpoint {site} panic"));
            panic!("{msg}");
        }
        Fire::Sleep(d) => {
            std::thread::sleep(d);
            None
        }
        Fire::Return(v) => Some(v.unwrap_or_default()),
        Fire::Print(msg) => {
            println!("{}", msg.unwrap_or_else(|| format!("failpoint {site} hit")));
            None
        }
        Fire::Callback => {
            // Re-acquire to run the callback: callbacks are not
            // cloneable, so they fire under the lock. Callbacks must
            // not recursively evaluate failpoints.
            let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(actions) = reg.sites.get(site) {
                for action in actions {
                    if let ActionKind::Callback(f) = &action.kind {
                        f();
                        break;
                    }
                }
            }
            None
        }
    }
}

/// Marks a named failpoint site. Two forms:
///
/// * `fail_point!("site")` — evaluates the site; `return` actions are
///   ignored (panic/sleep/callback still fire).
/// * `fail_point!("site", |v| expr)` — evaluates the site; when a
///   `return(value)` action fires, the closure receives the value
///   string and its result is **returned from the enclosing function**.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {{
        let _ = $crate::eval($site);
    }};
    ($site:expr, $body:expr) => {{
        if let Some(value) = $crate::eval($site) {
            #[allow(clippy::redundant_closure_call)]
            return ($body)(value);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests serialise on one lock.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_site_is_noop() {
        let _g = serial();
        teardown();
        assert_eq!(eval("nope"), None);
    }

    #[test]
    fn count_prefix_exhausts() {
        let _g = serial();
        teardown();
        cfg("shim-count", "2*return(x)").unwrap();
        assert_eq!(eval("shim-count").as_deref(), Some("x"));
        assert_eq!(eval("shim-count").as_deref(), Some("x"));
        assert_eq!(eval("shim-count"), None);
        remove("shim-count");
    }

    #[test]
    fn chained_actions_fire_in_order() {
        let _g = serial();
        teardown();
        cfg("shim-chain", "1*return(a)->return(b)").unwrap();
        assert_eq!(eval("shim-chain").as_deref(), Some("a"));
        assert_eq!(eval("shim-chain").as_deref(), Some("b"));
        assert_eq!(eval("shim-chain").as_deref(), Some("b"));
        remove("shim-chain");
    }

    #[test]
    fn panic_action_panics_and_site_survives() {
        let _g = serial();
        teardown();
        cfg("shim-panic", "1*panic(boom)").unwrap();
        let err = std::panic::catch_unwind(|| eval("shim-panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom"), "payload was {msg:?}");
        // Count exhausted: next hit is a no-op, registry not poisoned.
        assert_eq!(eval("shim-panic"), None);
        remove("shim-panic");
    }

    #[test]
    fn callback_fires() {
        let _g = serial();
        teardown();
        use std::sync::atomic::AtomicUsize;
        static HITS: AtomicUsize = AtomicUsize::new(0);
        cfg_callback("shim-cb", || {
            HITS.fetch_add(1, Ordering::SeqCst);
        });
        eval("shim-cb");
        eval("shim-cb");
        assert_eq!(HITS.load(Ordering::SeqCst), 2);
        remove("shim-cb");
    }

    #[test]
    fn off_and_bad_specs() {
        let _g = serial();
        teardown();
        cfg("shim-off", "off").unwrap();
        assert_eq!(eval("shim-off"), None);
        remove("shim-off");
        assert!(cfg("x", "explode").is_err());
        assert!(cfg("x", "sleep(abc)").is_err());
        assert!(cfg("x", "panic(unbalanced").is_err());
        assert!(cfg("x", "q*panic").is_err());
    }

    #[test]
    fn macro_return_form() {
        let _g = serial();
        teardown();
        fn site_fn() -> usize {
            fail_point!("shim-macro", |v: String| v.parse::<usize>().unwrap_or(0));
            7
        }
        assert_eq!(site_fn(), 7);
        cfg("shim-macro", "return(42)").unwrap();
        assert_eq!(site_fn(), 42);
        remove("shim-macro");
        assert_eq!(site_fn(), 7);
    }
}
