//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of `proptest` its tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, range and
//! tuple strategies, [`collection::vec`], [`prelude::any`], `Just`,
//! `prop_oneof!`, the `proptest!` test macro, and the `prop_assert*`
//! macros.
//!
//! Generation is deterministic (fixed seed per test, one stream across
//! cases) and there is **no shrinking**: a failing case reports the inputs
//! that failed and panics, which is enough for CI. The generation streams
//! differ from upstream proptest.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// The RNG handed to strategies during generation.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Deterministic generator for one named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name so distinct tests get distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// Test-runner configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Unlike upstream proptest there is no intermediate
/// value tree: strategies produce final values directly and never shrink.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the next level, up to `depth` levels.
    /// The `_desired_size` / `_expected_branch` hints are accepted for
    /// upstream signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let level = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), level]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among alternatives (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives (must be nonempty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.0.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`prelude::any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.random()
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}
impl_any!(bool, u8, u32, u64, usize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes acceptable to [`vec()`](self::vec): a fixed length or a length range.
    pub trait IntoSize {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            assert!(self.start < self.end, "empty size range");
            rng.0.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and the given
    /// length (or length range).
    pub fn vec<S: Strategy, L: IntoSize>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`](self::vec).
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSize> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs one property over `cases` deterministic random cases.
///
/// `gen_and_run` draws inputs, returns their debug rendering, and runs the
/// body; on panic the failing inputs are reported before resuming the
/// unwind. Used by the `proptest!` macro, not called directly.
pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut gen_and_run: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), String>),
{
    let mut rng = TestRng::for_test(test_name);
    for case in 0..config.cases {
        let (inputs, outcome) = gen_and_run(&mut rng);
        if let Err(msg) = outcome {
            panic!(
                "proptest property `{test_name}` failed at case {case}/{}:\n  inputs: {inputs}\n  {msg}",
                config.cases
            );
        }
    }
}

/// Declares property tests. Supports the upstream surface the workspace
/// uses: an optional `#![proptest_config(..)]` header and `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $(let $arg = $strat;)*
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&$arg, rng);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                let outcome = match outcome {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        let msg = e
                            .downcast_ref::<String>()
                            .map(|s| s.clone())
                            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        Err(msg)
                    }
                };
                (inputs, outcome)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` with proptest spelling (no shrinking, plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest spelling (no shrinking, plain panic).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest spelling (no shrinking, plain panic).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Expr {
        Lit(u8),
        Neg(Box<Expr>),
        Add(Box<Expr>, Box<Expr>),
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![Just(Expr::Lit(0)), (1u8..10).prop_map(Expr::Lit)];
        leaf.prop_recursive(3, 10, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            ]
        })
    }

    fn depth(e: &Expr) -> usize {
        match e {
            Expr::Lit(_) => 0,
            Expr::Neg(a) => 1 + depth(a),
            Expr::Add(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(n in 2usize..=8, mask in collection::vec(any::<bool>(), 5)) {
            prop_assert!((2..=8).contains(&n));
            prop_assert_eq!(mask.len(), 5);
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..=4).prop_flat_map(|n| {
            collection::vec(0usize..10, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn recursion_is_bounded(e in arb_expr()) {
            prop_assert!(depth(&e) <= 3, "depth {} on {:?}", depth(&e), e);
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::run_property(
                "always_fails",
                &ProptestConfig::with_cases(4),
                |rng| {
                    let x = Strategy::generate(&(0usize..10), rng);
                    (
                        format!("x = {x:?}"),
                        Err(format!("boom at {x}")),
                    )
                },
            );
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails") && msg.contains("inputs"), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let gen_some = || {
            let mut rng = crate::TestRng::for_test("det");
            (0..10).map(|_| Strategy::generate(&(0u64..1000), &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen_some(), gen_some());
    }
}
