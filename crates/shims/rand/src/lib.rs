//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`random`, `random_range`, `random_bool`),
//! [`rngs::StdRng`] (xoshiro256**, seeded via SplitMix64), and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic given the
//! seed, which is all the workspace relies on (seeded, reproducible runs).
//!
//! The streams differ from upstream `rand` — only determinism per seed is
//! promised, not bit-compatibility with the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value range (`rng.random()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `random_range` endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive). `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-range request: every bit pattern is valid.
                    return <$t>::sample_full(rng);
                }
                // Widening-multiply rejection-free mapping (Lemire); the
                // slight bias at u128 scale is irrelevant for test inputs.
                let x = rng.next_u64() as u128;
                low.wrapping_add((x.wrapping_mul(span) >> 64) as $t)
            }
        }
    )*};
}

trait SampleFull {
    fn sample_full<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}
macro_rules! impl_sample_full {
    ($($t:ty),*) => {$(
        impl SampleFull for $t {
            fn sample_full<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_full!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "empty range in random_range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Helper for converting an exclusive upper bound to an inclusive one.
pub trait One {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}
macro_rules! impl_one {
    ($($t:ty),*) => {$(impl One for $t { fn minus_one(self) -> $t { self - 1 } })*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from the given range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Uniform draw over the full value range of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Deterministic per seed; not cryptographic, and not stream-compatible
    /// with upstream `rand`'s `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding recipe for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..10);
            assert!(x < 10);
            let y: usize = rng.random_range(3..=5);
            assert!((3..=5).contains(&y));
            let z: u32 = rng.random_range(0..8u32);
            assert!(z < 8);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rngcore_usable() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut dyn RngCore = &mut rng;
        let _ = dynrng.next_u64();
        let x: u64 = dynrng.random();
        let _ = x;
    }
}
