//! Covering graphs in action: build `k`-fold lifts of a port-numbered
//! graph from permutation voltages and watch a distributed algorithm fail
//! to notice (the lifting lemma), then certify the same fact with
//! bisimulation and exploit it with quotients.
//!
//! Run with: `cargo run --example covering_lifts`

use portnum::algorithms::vv::ViewGather;
use portnum::graph::lifts::{lift, Voltages};
use portnum::graph::{generators, properties, PortNumbering};
use portnum::logic::bisim::{refine, BisimStyle};
use portnum::logic::{minimum_base, Kripke};
use portnum::machine::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let g = generators::petersen();
    let p = PortNumbering::consistent(&g);
    println!("base: the Petersen graph ({} nodes, {} edges)\n", g.len(), g.edge_count());

    let mut rng = StdRng::seed_from_u64(2012);
    for (name, voltages) in [
        ("identity (3 disjoint copies)", Voltages::identity(&g, 3)),
        ("double cover (swap voltage)", Voltages::double_cover(&g)),
        ("random 3-sheet voltages", Voltages::random(&g, 3, &mut rng)),
    ] {
        let lifted = lift(&g, &p, &voltages).expect("voltages fit the base");
        let h = lifted.graph();
        println!(
            "lift [{name}]: {} nodes, {} edges, {} component(s)",
            h.len(),
            h.edge_count(),
            properties::component_count(h)
        );

        // The covering map is verified structurally...
        assert!(lifted.covering_map().verify(&g, &p, h, lifted.ports()));

        // ...and dynamically: a 3-round view-gathering algorithm produces
        // identical outputs at a node and at every member of its fibre.
        let sim = Simulator::new();
        let base_run = sim.run(&ViewGather { radius: 3 }, &g, &p).unwrap();
        let lift_run = sim.run(&ViewGather { radius: 3 }, h, lifted.ports()).unwrap();
        let agree = h.nodes().all(|w| {
            lift_run.outputs()[w] == base_run.outputs()[lifted.covering_map().project(w)]
        });
        println!("  executions commute with the projection: {agree}");

        // The logic-side certificate: the lift's K++ has exactly as many
        // bisimulation classes as the base's, and quotienting recovers the
        // same minimum base.
        let base_k = Kripke::k_pp(&g, &p);
        let lift_k = Kripke::k_pp(h, lifted.ports());
        let base_classes = refine(&base_k, BisimStyle::Plain);
        let lift_classes = refine(&lift_k, BisimStyle::Plain);
        println!(
            "  bisimulation classes: base {}, lift {}",
            base_classes.class_count(base_classes.depth()),
            lift_classes.class_count(lift_classes.depth()),
        );
        let (base_q, _) = minimum_base(&base_k);
        let (lift_q, _) = minimum_base(&lift_k);
        println!(
            "  minimum bases: {} and {} world(s)\n",
            base_q.len(),
            lift_q.len()
        );
    }

    println!("a cover is indistinguishable from its base — Section 3.3's classic tool,");
    println!("here executable three ways: simulation, refinement, quotient.");
}
