//! Hennessy–Milner meets Theorem 2: compute the characteristic formula of
//! a node, *compile it into a distributed algorithm*, and watch the
//! network recognise — in `md(χ)` rounds — exactly the nodes that are
//! indistinguishable from it.
//!
//! The demo uses the paper's Theorem 13 witness: two "white" nodes that
//! plain bisimulation (class `SB`, logic ML) provably cannot separate but
//! graded bisimulation (class `MB`, logic GML) can. The characteristic
//! formulas make both facts executable.
//!
//! Run with: `cargo run --example hennessy_milner`

use portnum::graph::{generators, PortNumbering};
use portnum::logic::bisim::{refine_bounded, BisimStyle};
use portnum::logic::compile::{compile_mb, compile_sb};
use portnum::logic::{characteristic, evaluate, Kripke};
use portnum::machine::adapters::{MbAsVector, SbAsVector};
use portnum::machine::Simulator;

fn render(v: &[bool]) -> String {
    v.iter().map(|&b| if b { '#' } else { '.' }).collect()
}

fn main() {
    let (g, (white_a, white_b)) = generators::theorem13_witness();
    let p = PortNumbering::consistent(&g);
    let k = Kripke::k_mm(&g);
    let depth = 2;
    println!(
        "graph: Theorem 13 witness ({} nodes); white nodes {white_a} and {white_b}\n",
        g.len()
    );

    for (style, name) in [(BisimStyle::Plain, "plain/ML"), (BisimStyle::Graded, "graded/GML")] {
        let chars = characteristic(&k, style, depth);
        let chi = chars.formula_for(white_a, depth).clone();
        println!("characteristic formula of node {white_a} ({name}, depth {depth}):");
        println!("  size {} nodes, modal depth {}", chi.size(), chi.modal_depth());

        // Model-check it...
        let truth = evaluate(&k, &chi).expect("χ evaluates on its own model");

        // ...and run it as a distributed algorithm of the matching class.
        let sim = Simulator::new();
        let (distributed, rounds) = if style == BisimStyle::Plain {
            let algo = compile_sb(&chi).expect("plain χ is ungraded ML");
            let run = sim.run(&SbAsVector(algo), &g, &p).expect("terminates");
            (run.outputs().to_vec(), run.rounds())
        } else {
            let algo = compile_mb(&chi).expect("graded χ is GML");
            let run = sim.run(&MbAsVector(algo), &g, &p).expect("terminates");
            (run.outputs().to_vec(), run.rounds())
        };
        assert_eq!(distributed, truth, "Theorem 2: simulation ≡ model checking");

        // The extension is exactly the equivalence class of the node.
        let classes = refine_bounded(&k, style, depth);
        for w in g.nodes() {
            assert_eq!(truth[w], classes.equivalent_at(depth, white_a, w));
        }

        println!("  extension ({rounds} rounds, distributed): {}", render(&distributed));
        println!(
            "  recognises the other white node {white_b}: {}\n",
            if truth[white_b] { "yes — cannot separate" } else { "no — separated!" }
        );
    }

    println!("plain χ marks both whites (SB algorithms cannot count);");
    println!("graded χ marks only node {white_a} — the executable heart of SB ⊊ MB.");
}
