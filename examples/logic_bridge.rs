//! The modal-logic bridge (Section 4): write a property as a formula,
//! model-check it, compile it into a distributed algorithm of the matching
//! weak class, run that algorithm, and watch the two agree — with running
//! time equal to modal depth. Then go the other way: compile a hand-written
//! algorithm into a formula.
//!
//! Run with: `cargo run --example logic_bridge`

use portnum::algorithms::mb::OddOddMb;
use portnum_graph::{generators, PortNumbering};
use portnum_logic::compile::{compile_mb, compile_sb, mb_algorithm_to_formulas, ToFormulaOptions};
use portnum_logic::{evaluate, parse, Kripke, ModelChecker};
use portnum_machine::{adapters::MbAsVector, adapters::SbAsVector, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generators::theorem13_witness().0;
    let ports = PortNumbering::consistent(&graph);
    let sim = Simulator::new();

    // --- Formula → algorithm (Theorem 2, parts 1–2) -------------------
    // "I have at least two neighbours of odd degree 1, or none at all."
    let psi = parse("<*,*>>=2 q1 | !<*,*> q1")?;
    println!("ψ  = {psi}   (modal depth {})", psi.modal_depth());

    let model = Kripke::k_mm(&graph);
    let truth = evaluate(&model, &psi)?;
    println!("model checking on K(-,-):   {truth:?}");

    let algorithm = compile_mb(&psi)?;
    let run = sim.run(&MbAsVector(algorithm), &graph, &ports)?;
    println!("distributed MB execution:   {:?}", run.outputs());
    assert_eq!(run.outputs(), truth);
    assert_eq!(run.rounds(), psi.modal_depth());
    println!("agreement: yes; rounds = modal depth = {}", run.rounds());

    // The ungraded fragment compiles into the weaker SB class.
    let plain = parse("<*,*> (q3 & <*,*> q1)")?;
    let run = sim.run(&SbAsVector(compile_sb(&plain)?), &graph, &ports)?;
    assert_eq!(run.outputs(), evaluate(&model, &plain)?);
    println!("SB compile of {plain}: agrees in {} rounds", run.rounds());

    // --- Algorithm → formula (Theorem 2, parts 3–4) -------------------
    let opts = ToFormulaOptions { max_degree: 3, horizon: 4, ..Default::default() };
    let formulas = mb_algorithm_to_formulas(&OddOddMb, &opts)?;
    println!("\ncompiling the hand-written odd-odd MB algorithm into GML formulas:");
    let run = sim.run(&MbAsVector(OddOddMb), &graph, &ports)?;
    // The emitted formulas share structure, so check the whole suite
    // through one per-model plan cache instead of evaluating each from
    // scratch.
    let mut checker = ModelChecker::new(&model);
    for (output, formula) in &formulas {
        let truth = checker.check(formula)?;
        let expected: Vec<bool> = run.outputs().iter().map(|o| o == output).collect();
        assert_eq!(truth.to_bools(), expected);
        println!(
            "  output {output}: formula with {} nodes, md {}, matches execution: yes",
            formula.size(),
            formula.modal_depth()
        );
    }
    let stats = checker.stats();
    println!(
        "plan cache over the suite: {} AST nodes lowered, {} distinct instructions, {} computed",
        stats.ast_nodes, stats.instructions, stats.computed
    );
    Ok(())
}
