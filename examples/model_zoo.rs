//! A tour of all seven models on one graph: the same network seen through
//! weaker and weaker eyes (Figure 6), plus the two simulation theorems that
//! collapse the hierarchy back (Theorems 4 and 8).
//!
//! Run with: `cargo run --example model_zoo`

use portnum::algorithms::mb::OddOddMb;
use portnum::algorithms::sb::LocalMaxDegreeSb;
use portnum::algorithms::sv::StarLeafSelect;
use portnum::algorithms::vv::ViewGather;
use portnum::algorithms::vvc::LocalTypeSymmetryBreak;
use portnum::sim::{set_from_vector, MultisetFromVector};
use portnum_graph::{generators, PortNumbering};
use portnum_machine::adapters::{MbAsVector, MultisetAsVector, SbAsVector, SetAsVector};
use portnum_machine::Simulator;

fn main() {
    let graph = generators::figure1_graph();
    let ports = PortNumbering::consistent(&graph);
    let sim = Simulator::new();
    println!("running one algorithm per class on {graph}:\n");

    let run = sim.run(&SbAsVector(LocalMaxDegreeSb), &graph, &ports).unwrap();
    println!("SB   local max degree      -> {:?} ({} round)", run.outputs(), run.rounds());

    let run = sim.run(&MbAsVector(OddOddMb), &graph, &ports).unwrap();
    println!("MB   odd-odd (Thm 13)      -> {:?} ({} round)", run.outputs(), run.rounds());

    let run = sim.run(&SetAsVector(StarLeafSelect), &graph, &ports).unwrap();
    println!("SV   star leaf (Thm 11)    -> {:?} ({} round)", run.outputs(), run.rounds());

    let run = sim.run(&ViewGather { radius: 2 }, &graph, &ports).unwrap();
    let sizes: Vec<usize> = run.outputs().iter().map(|v| v.size()).collect();
    println!("VV   view gather (r = 2)   -> view sizes {:?} ({} rounds)", sizes, run.rounds());

    let run = sim.run(&LocalTypeSymmetryBreak, &graph, &ports).unwrap();
    println!("VVc  local types (Thm 17)  -> {:?} ({} rounds)", run.outputs(), run.rounds());

    // The collapse, executed: a full Vector algorithm squeezed through the
    // Set bottleneck (Theorem 8 then Theorem 4): SV = MV = VV.
    println!("\ncollapsing VV into SV (Theorems 8 + 4):");
    let delta = graph.max_degree();
    let direct = sim.run(&ViewGather { radius: 1 }, &graph, &ports).unwrap();
    let through_mv = sim
        .run(&MultisetAsVector(MultisetFromVector::new(ViewGather { radius: 1 })), &graph, &ports)
        .unwrap();
    let through_sv = sim
        .run(&SetAsVector(set_from_vector(ViewGather { radius: 1 }, delta)), &graph, &ports)
        .unwrap();
    println!("  direct VV rounds:        {}", direct.rounds());
    println!("  via Multiset (Thm 8):    {} (same)", through_mv.rounds());
    println!(
        "  via Set (Thm 8 + Thm 4): {} (= T + 2Δ = {} + {})",
        through_sv.rounds(),
        direct.rounds(),
        2 * delta
    );
    assert_eq!(through_mv.rounds(), direct.rounds());
    assert_eq!(through_sv.rounds(), direct.rounds() + 2 * delta);
}
