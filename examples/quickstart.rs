//! Quickstart: define a distributed algorithm in the weakest model
//! (`Set ∩ Broadcast`), run it on a port-numbered graph, and inspect the
//! problem-class hierarchy.
//!
//! Run with: `cargo run --example quickstart`

use portnum::ProblemClass;
use portnum_graph::{generators, PortNumbering};
use portnum_machine::{adapters::SbAsVector, Payload, SbAlgorithm, Simulator, Status};
use std::collections::BTreeSet;

/// An `SB` algorithm: after one round of broadcasting degrees, each node
/// reports whether it is a local maximum by degree.
#[derive(Debug)]
struct LocalMax;

impl SbAlgorithm for LocalMax {
    type State = usize;
    type Msg = usize;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<usize, bool> {
        Status::Running(degree)
    }

    fn broadcast(&self, state: &usize) -> usize {
        *state
    }

    fn step(&self, state: &usize, received: &BTreeSet<Payload<usize>>) -> Status<usize, bool> {
        let max = received.iter().filter_map(Payload::data).max();
        Status::Stopped(max.is_none_or(|m| m <= state))
    }
}

fn main() {
    // A small network: the 4-node example of the paper's Figure 1.
    let graph = generators::figure1_graph();
    let ports = PortNumbering::consistent(&graph);
    println!("graph: {graph}, numbering consistent: {}", ports.is_consistent());

    // Execute. The SbAsVector adapter embeds the weak algorithm into the
    // full Vector interface the simulator runs (the trivial inclusion
    // SB ⊆ VV of Figure 5a).
    let run = Simulator::new()
        .run(&SbAsVector(LocalMax), &graph, &ports)
        .expect("terminates in one round");
    println!("rounds: {}", run.rounds());
    for (node, is_max) in run.outputs().iter().enumerate() {
        println!("  node {node} (degree {}): local max = {is_max}", graph.degree(node));
    }

    // The hierarchy this algorithm lives at the bottom of:
    println!("\nthe seven classes and the paper's main theorem:");
    for class in ProblemClass::ALL {
        println!(
            "  {class:>3}  level {}  —  {}",
            class.level(),
            class.collapse_evidence()
        );
    }
    println!("\nlinear order: SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc");
}
