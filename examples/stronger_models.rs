//! Stronger models (paper Section 3.1): why maximal independent set
//! separates the weak anonymous models from networks with unique
//! identifiers (`LOCAL`) and from randomised algorithms.
//!
//! The demo builds the even cycle with its matching-based *consistent*
//! symmetric port numbering, certifies with partition refinement that all
//! nodes are bisimilar in `K₊,₊` (so by Corollary 3a every deterministic
//! anonymous algorithm outputs a constant — never an MIS), and then breaks
//! the deadlock twice: with ids and with random bits.
//!
//! Run with: `cargo run --example stronger_models`

use portnum::stronger::local::{run_with_ids, GreedyMisById};
use portnum::stronger::randomized::{run_randomized, LubyMis};
use portnum::stronger::separation::{
    even_cycle_matched_numbering, mis_beyond_vvc, mis_beyond_vvc_randomized,
};
use portnum_logic::bisim::{refine, BisimStyle};
use portnum_logic::Kripke;

fn render(outputs: &[bool]) -> String {
    outputs.iter().map(|&b| if b { '#' } else { '.' }).collect()
}

fn main() {
    let m = 6;
    let (g, p) = even_cycle_matched_numbering(m);
    println!("witness: C_{} with the matching-based numbering", 2 * m);
    println!("  consistent: {}", p.is_consistent());

    // The negative side, certified.
    let k = Kripke::k_pp(&g, &p);
    let classes = refine(&k, BisimStyle::Plain);
    println!(
        "  bisimulation classes in K++: {} (all nodes equivalent: {})",
        classes.class_count(classes.depth()),
        classes.class_count(classes.depth()) == 1
    );
    println!("  => every VVc algorithm outputs a constant here; no constant is an MIS\n");

    // Positive side 1: unique identifiers.
    let ids: Vec<u64> = (0..g.len() as u64).map(|v| (v * 37 + 11) % 101).collect();
    let (out, rounds) = run_with_ids(&GreedyMisById, &g, &p, &ids, 1_000)
        .expect("greedy MIS terminates in <= 2n rounds");
    println!("LOCAL model (greedy by id), {rounds} rounds:  {}", render(&out));

    // Positive side 2: randomness, three seeds.
    for seed in [1u64, 2, 3] {
        let (out, rounds) =
            run_randomized(&LubyMis, &g, &p, seed, 100_000).expect("Luby terminates w.h.p.");
        println!("randomised (Luby, seed {seed}), {rounds} rounds:   {}", render(&out));
    }

    // The packaged evidence used by the test suite.
    println!();
    for e in [mis_beyond_vvc(m), mis_beyond_vvc_randomized(m, 42)] {
        println!("evidence: {e}");
        assert!(e.holds());
    }
}
