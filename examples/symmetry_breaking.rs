//! The `VV ⊊ VVc` story of Theorem 17, end to end: on a regular graph
//! without a perfect matching, consistent port numberings always allow
//! symmetry breaking, while Lemma 15 wires an inconsistent numbering under
//! which *every* deterministic anonymous algorithm is blind — certified by
//! bisimulation.
//!
//! Run with: `cargo run --example symmetry_breaking`

use portnum::algorithms::vvc::LocalTypeSymmetryBreak;
use portnum::problems::{Problem, SymmetryBreak};
use portnum_graph::{generators, matching, properties, PortNumbering};
use portnum_logic::bisim::{refine, BisimStyle};
use portnum_logic::Kripke;
use portnum_machine::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let graph = generators::no_one_factor(3);
    println!(
        "witness graph: {} nodes, {}-regular, connected: {}, 1-factor: {}",
        graph.len(),
        properties::regularity(&graph).unwrap(),
        properties::is_connected(&graph),
        matching::has_one_factor(&graph),
    );
    assert!(SymmetryBreak::in_family(&graph));

    let sim = Simulator::new();
    let mut rng = StdRng::seed_from_u64(42);

    // Consistent numberings: the local-type algorithm succeeds every time.
    println!("\nconsistent numberings (the VVc promise):");
    for trial in 0..5 {
        let ports = PortNumbering::random_consistent(&graph, &mut rng);
        let run = sim.run(&LocalTypeSymmetryBreak, &graph, &ports).expect("two rounds");
        let ones = run.outputs().iter().filter(|&&b| b).count();
        let valid = SymmetryBreak.is_valid(&graph, run.outputs());
        println!("  trial {trial}: {} selected / {} nodes, valid: {valid}", ones, graph.len());
        assert!(valid);
    }

    // The symmetric numbering of Lemma 15: the same algorithm collapses.
    let symmetric = PortNumbering::symmetric_regular(&graph).expect("graph is regular");
    println!("\nsymmetric numbering from a 1-factorization of the double cover:");
    println!("  consistent: {}", symmetric.is_consistent());
    let run = sim.run(&LocalTypeSymmetryBreak, &graph, &symmetric).expect("two rounds");
    let ones = run.outputs().iter().filter(|&&b| b).count();
    println!("  local-type algorithm selects {ones} / {} — constant output", graph.len());
    assert!(!SymmetryBreak.is_valid(&graph, run.outputs()));

    // And no other algorithm can do better: all nodes are bisimilar.
    let model = Kripke::k_pp(&graph, &symmetric);
    let classes = refine(&model, BisimStyle::Plain);
    println!(
        "  bisimulation classes in K(+,+): {} (all nodes equivalent — Corollary 3a)",
        classes.class_count(classes.depth())
    );
    assert_eq!(classes.class_count(classes.depth()), 1);
    println!("\nconclusion: VV ⊊ VVc, witnessed and machine-checked");
}
