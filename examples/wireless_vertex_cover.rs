//! Domain scenario: a wireless sensor network must choose monitoring nodes
//! covering every radio link — a vertex cover — without identifiers, port
//! numbers, or any knowledge of the network size. That is exactly the
//! `Multiset ∩ Broadcast` (`MB`) model the paper motivates for wireless
//! networks (Section 3.3), and the edge-packing algorithm achieves a
//! provable 2-approximation in it.
//!
//! Run with: `cargo run --example wireless_vertex_cover`

use portnum::algorithms::mb::EdgePackingVertexCover;
use portnum::problems::{Problem, VertexCoverApprox};
use portnum::verify;
use portnum_graph::{generators, PortNumbering};
use portnum_machine::{adapters::MbAsVector, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let sim = Simulator::new();
    let problem = VertexCoverApprox::two();

    println!("{:<14} {:>5} {:>6} {:>5} {:>6} {:>7}", "network", "nodes", "links", "|C|", "opt", "rounds");
    for (name, graph) in [
        ("ring".to_string(), generators::cycle(20)),
        ("mesh".to_string(), generators::grid(4, 5)),
        ("hub".to_string(), generators::star(12)),
        ("backbone".to_string(), generators::random_regular(16, 3, &mut rng)),
        ("adhoc".to_string(), generators::gnp(18, 0.18, &mut rng)),
    ] {
        if graph.edge_count() == 0 {
            continue;
        }
        // Wireless: the port numbering exists physically but the MB
        // algorithm cannot see it — any numbering gives the same run.
        let ports = PortNumbering::random(&graph, &mut rng);
        let run = sim
            .run(&MbAsVector(EdgePackingVertexCover), &graph, &ports)
            .expect("edge packing terminates");
        let chosen = run.outputs().iter().filter(|&&b| b).count();
        let optimum = verify::min_vertex_cover_size(&graph);
        assert!(problem.is_valid(&graph, run.outputs()), "2-approximation violated");
        println!(
            "{:<14} {:>5} {:>6} {:>5} {:>6} {:>7}",
            name,
            graph.len(),
            graph.edge_count(),
            chosen,
            optimum,
            run.rounds()
        );
    }
    println!("\nevery |C| is a vertex cover with |C| ≤ 2·opt, computed with broadcasts only");
}
