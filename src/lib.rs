//! Umbrella crate for examples and integration tests.
pub use portnum;
pub use portnum_graph;
pub use portnum_logic;
pub use portnum_machine;
