//! The §5.4 corollaries, composed end to end: formulas of the *stronger*
//! logics are solvable by algorithms of the *weaker* classes, by chaining
//! the Theorem 2 compiler with the Theorem 4/9 simulation wrappers.
//!
//! * GMML on `K₋,₊` compiles to a `Multiset` algorithm (Theorem 2c); the
//!   Theorem 4 wrapper runs it in class `Set` — so counting modalities
//!   cost nothing over sets beyond `2Δ` rounds (corollary (b):
//!   MML and GMML capture the same problems on `K₋,₊`).
//! * MML on `K₊,₋` compiles to a `Broadcast` algorithm (Theorem 2e); the
//!   Theorem 9 wrapper runs it in `Multiset ∩ Broadcast` — in-port
//!   modalities are within reach of `MB` (corollary (d): MML on `K₊,₋`
//!   captures the same problems as GML on `K₋,₋`).

use portnum::sim::{MbFromVb, SetFromMultiset};
use portnum_graph::{generators, Graph, PortNumbering};
use portnum_logic::compile::{compile_broadcast, compile_multiset};
use portnum_logic::{evaluate, Formula, Kripke, ModalIndex};
use portnum_machine::adapters::{MbAsVector, SetAsVector};
use portnum_machine::Simulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graphs(rng: &mut StdRng) -> Vec<Graph> {
    let mut out = vec![
        generators::figure1_graph(),
        generators::star(3),
        generators::cycle(5),
        generators::wheel(4),
    ];
    for _ in 0..3 {
        out.push(generators::gnp(8, 0.3, rng));
    }
    out
}

/// A random graded formula over `(*, j)` indices of depth ≤ 2.
fn random_out_formula<R: Rng>(rng: &mut R, max_port: usize, depth: usize) -> Formula {
    match rng.random_range(0..8u32) {
        0 => Formula::top(),
        1 | 2 => Formula::prop(rng.random_range(0..=max_port)),
        3 => random_out_formula(rng, max_port, depth).not(),
        4 => {
            let a = random_out_formula(rng, max_port, depth);
            let b = random_out_formula(rng, max_port, depth);
            a.and(&b)
        }
        _ if depth == 0 => Formula::prop(rng.random_range(0..=max_port)),
        _ => Formula::diamond_geq(
            ModalIndex::Out(rng.random_range(0..max_port)),
            rng.random_range(1..=2),
            &random_out_formula(rng, max_port, depth - 1),
        ),
    }
}

/// A random ungraded, **in-port-symmetric** formula over `(i, *)` indices
/// of depth ≤ 2: every modality appears as a disjunction or conjunction
/// over *all* in-ports, so the extension does not depend on how the
/// receiver numbers its ports. Theorem 9 reassigns in-port numbers during
/// the simulation, so only such formulas have a pointwise-stable meaning
/// in class `MB` (problem-level solvability is what the theorem asserts
/// for the rest).
fn random_in_formula<R: Rng>(rng: &mut R, max_port: usize, depth: usize) -> Formula {
    match rng.random_range(0..8u32) {
        0 => Formula::bottom(),
        1 | 2 => Formula::prop(rng.random_range(0..=max_port)),
        3 => random_in_formula(rng, max_port, depth).not(),
        4 => {
            let a = random_in_formula(rng, max_port, depth);
            let b = random_in_formula(rng, max_port, depth);
            a.or(&b)
        }
        _ if depth == 0 => Formula::prop(rng.random_range(0..=max_port)),
        _ => {
            let inner = random_in_formula(rng, max_port, depth - 1);
            let diamonds = (0..max_port).map(|i| Formula::diamond(ModalIndex::In(i), &inner));
            if rng.random_bool(0.5) {
                // "some neighbour satisfies inner"
                Formula::any_of(diamonds)
            } else {
                // "I have max_port ports and all feeders satisfy inner"
                Formula::all_of(diamonds)
            }
        }
    }
}

#[test]
fn gmml_on_k_mp_is_solvable_in_class_set() {
    // Corollary (b), executable: every GMML formula — counting included —
    // defines a problem solvable without multiplicities, paying 2Δ rounds.
    let mut rng = StdRng::seed_from_u64(54);
    let sim = Simulator::new();
    for trial in 0..10 {
        for g in graphs(&mut rng) {
            let delta = g.max_degree().max(1);
            let p = PortNumbering::random(&g, &mut rng);
            let psi = random_out_formula(&mut rng, delta, 2);
            let expected = evaluate(&Kripke::k_mp(&g, &p), &psi).unwrap();
            let algo = compile_multiset(&psi).expect("GMML compiles to Multiset");
            let run = sim
                .run(&SetAsVector(SetFromMultiset::new(algo, delta)), &g, &p)
                .expect("terminates");
            assert_eq!(run.outputs(), expected, "trial {trial}: {psi} on {g}");
            assert!(
                run.rounds() <= psi.modal_depth() + 2 * delta,
                "trial {trial}: {psi} took {} rounds on {g}",
                run.rounds()
            );
        }
    }
}

#[test]
fn mml_on_k_pm_is_solvable_in_class_mb() {
    // Corollary (d), executable: in-port-symmetric MML on K₊,₋ is
    // MB-computable pointwise (and general MML problem-wise, Theorem 9).
    let mut rng = StdRng::seed_from_u64(45);
    let sim = Simulator::new();
    for trial in 0..10 {
        for g in graphs(&mut rng) {
            let delta = g.max_degree().max(1);
            let p = PortNumbering::random(&g, &mut rng);
            let psi = random_in_formula(&mut rng, delta, 2);
            let expected = evaluate(&Kripke::k_pm(&g, &p), &psi).unwrap();
            let algo = compile_broadcast(&psi).expect("MML/In compiles to Broadcast");
            let run = sim
                .run(&MbAsVector(MbFromVb::new(algo)), &g, &p)
                .expect("terminates");
            assert_eq!(run.outputs(), expected, "trial {trial}: {psi} on {g}");
            assert!(run.rounds() <= psi.modal_depth(), "no round overhead (Theorem 9)");
        }
    }
}

#[test]
fn simplification_composes_with_compilation() {
    // `simplify` may lower the modal depth, and the compiled algorithm
    // gets faster accordingly, with identical outputs.
    use portnum_logic::simplify;
    let mut rng = StdRng::seed_from_u64(99);
    let sim = Simulator::new();
    let g = generators::figure1_graph();
    let p = PortNumbering::consistent(&g);
    let delta = g.max_degree();
    for _ in 0..40 {
        let psi = random_out_formula(&mut rng, delta, 2);
        let slim = simplify(&psi);
        let k = Kripke::k_mp(&g, &p);
        assert_eq!(evaluate(&k, &psi).unwrap(), evaluate(&k, &slim).unwrap(), "{psi}");
        let a = compile_multiset(&psi).unwrap();
        let b = compile_multiset(&slim).unwrap();
        use portnum_machine::adapters::MultisetAsVector;
        let run_a = sim.run(&MultisetAsVector(a), &g, &p).unwrap();
        let run_b = sim.run(&MultisetAsVector(b), &g, &p).unwrap();
        assert_eq!(run_a.outputs(), run_b.outputs(), "{psi} vs {slim}");
        assert!(run_b.rounds() <= run_a.rounds(), "{psi} vs {slim}");
    }
}
