//! Cross-validation of independent characterisations of the same
//! equivalences:
//!
//! * Yamashita–Kameda view equivalence == bounded bisimilarity on `K₊,₊`;
//! * colour refinement (1-WL) == graded bisimilarity on `K₋,₋`;
//! * `t`-step bisimilar nodes receive equal outputs from every compiled
//!   formula algorithm of depth ≤ `t` (Fact 1 via Theorem 2).

use portnum::algorithms::vv::ViewGather;
use portnum_graph::{generators, refinement, views, Graph, PortNumbering};
use portnum_logic::bisim::{refine, refine_bounded, BisimStyle};
use portnum_logic::Kripke;
use portnum_machine::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn suite(rng: &mut StdRng) -> Vec<Graph> {
    let mut graphs = vec![
        generators::figure1_graph(),
        generators::cycle(6),
        generators::petersen(),
        generators::theorem13_witness().0,
        generators::grid(3, 3),
    ];
    for _ in 0..3 {
        graphs.push(generators::gnp(9, 0.3, rng));
    }
    graphs
}

#[test]
fn views_equal_bounded_bisimulation_on_k_pp() {
    let mut rng = StdRng::seed_from_u64(1);
    for g in suite(&mut rng) {
        for _ in 0..3 {
            let p = PortNumbering::random(&g, &mut rng);
            let k = Kripke::k_pp(&g, &p);
            for depth in 0..5 {
                let view = views::view_classes(&g, &p, depth);
                let bisim = refine_bounded(&k, BisimStyle::Plain, depth);
                for u in g.nodes() {
                    for v in g.nodes() {
                        assert_eq!(
                            view.equivalent(depth, u, v),
                            bisim.equivalent_at(depth, u, v),
                            "{g}: nodes {u},{v} at depth {depth}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn color_refinement_equals_graded_bisimulation_on_k_mm() {
    let mut rng = StdRng::seed_from_u64(2);
    for g in suite(&mut rng) {
        let k = Kripke::k_mm(&g);
        let (wl, wl_round) = refinement::stable_coloring(&g);
        let graded = refine(&k, BisimStyle::Graded);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    wl.class(wl_round, u) == wl.class(wl_round, v),
                    graded.bisimilar(u, v),
                    "{g}: nodes {u},{v}"
                );
            }
        }
    }
}

#[test]
fn view_gather_outputs_equal_view_classes() {
    // The executable (simulator) and the static (interning) notions of
    // views coincide.
    let mut rng = StdRng::seed_from_u64(3);
    let sim = Simulator::new();
    for g in suite(&mut rng) {
        let p = PortNumbering::random(&g, &mut rng);
        for radius in [1usize, 3] {
            let run = sim.run(&ViewGather { radius }, &g, &p).unwrap();
            let classes = views::view_classes(&g, &p, radius);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        run.outputs()[u] == run.outputs()[v],
                        classes.equivalent(radius, u, v),
                        "{g}: nodes {u},{v} radius {radius}"
                    );
                }
            }
        }
    }
}

#[test]
fn symmetric_numberings_collapse_all_three_notions() {
    let mut rng = StdRng::seed_from_u64(4);
    for g in [generators::cycle(7), generators::petersen(), generators::no_one_factor(3)] {
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        // Views never split.
        let (vc, d) = views::stable_view_classes(&g, &p);
        assert_eq!(vc.class_count(d), 1, "{g}");
        // Bisimulation never splits.
        let k = Kripke::k_pp(&g, &p);
        let classes = refine(&k, BisimStyle::Plain);
        assert_eq!(classes.class_count(classes.depth()), 1, "{g}");
        // 1-WL never splits (regular graph).
        let (wl, r) = refinement::stable_coloring(&g);
        assert_eq!(wl.class_count(r), 1, "{g}");
        let _ = &mut rng;
    }
}

#[test]
fn bounded_bisimulation_bounds_algorithm_outputs() {
    // If u ~_t v in K_{+,+}, every Vector algorithm run for t rounds gives
    // them equal outputs — checked with view gathering as the universal
    // t-round algorithm.
    let mut rng = StdRng::seed_from_u64(5);
    let sim = Simulator::new();
    for g in suite(&mut rng) {
        let p = PortNumbering::random(&g, &mut rng);
        let k = Kripke::k_pp(&g, &p);
        for t in [1usize, 2] {
            let bisim = refine_bounded(&k, BisimStyle::Plain, t);
            let run = sim.run(&ViewGather { radius: t }, &g, &p).unwrap();
            for u in g.nodes() {
                for v in g.nodes() {
                    if bisim.equivalent_at(t, u, v) {
                        assert_eq!(run.outputs()[u], run.outputs()[v], "{g}: {u},{v} at {t}");
                    }
                }
            }
        }
    }
}
