//! Instance-level checks of the Section 5.4 expressivity corollaries.

use portnum_graph::{generators, Graph, PortNumbering};
use portnum_logic::bisim::{refine, BisimStyle};
use portnum_logic::{evaluate, Formula, Kripke, ModalIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Corollary (d): MML on `K₊,₋` captures the same problems as GML on
/// `K₋,₋`. Instance: counting can be eliminated in favour of in-port
/// disjunctions. For graphs of maximum degree ≤ Δ,
/// `⟨(*,*)⟩≥k φ  ≡  ⋁_{S ⊆ [Δ], |S| = k} ⋀_{i ∈ S} ⟨(i,*)⟩φ`.
#[test]
fn graded_any_equals_in_port_combinations() {
    let mut rng = StdRng::seed_from_u64(54);
    let graphs: Vec<Graph> = vec![
        generators::figure1_graph(),
        generators::star(3),
        generators::path(5),
        generators::gnp(8, 0.3, &mut rng),
    ];
    for g in graphs {
        let delta = g.max_degree().max(1);
        let p = PortNumbering::random(&g, &mut rng);
        let phi = Formula::prop(1).or(&Formula::prop(3));
        for k in 0..=delta.min(4) {
            let graded = Formula::diamond_geq(ModalIndex::Any, k, &phi);
            let k_mm = Kripke::k_mm(&g);
            let lhs = evaluate(&k_mm, &graded).unwrap();

            // All k-subsets of in-ports 0..delta.
            let mut disjuncts = Vec::new();
            let ports: Vec<usize> = (0..delta).collect();
            subsets(&ports, k, &mut Vec::new(), &mut |subset| {
                disjuncts.push(Formula::all_of(
                    subset.iter().map(|&i| Formula::diamond(ModalIndex::In(i), &phi)),
                ));
            });
            let translated = Formula::any_of(disjuncts);
            let k_pm = Kripke::k_pm(&g, &p);
            let rhs = evaluate(&k_pm, &translated).unwrap();
            assert_eq!(lhs, rhs, "{g}: k = {k}");
        }
    }
}

fn subsets(items: &[usize], k: usize, prefix: &mut Vec<usize>, emit: &mut impl FnMut(&[usize])) {
    if k == 0 {
        emit(prefix);
        return;
    }
    if items.len() < k {
        return;
    }
    // Include items[0].
    prefix.push(items[0]);
    subsets(&items[1..], k - 1, prefix, emit);
    prefix.pop();
    // Exclude items[0].
    subsets(&items[1..], k, prefix, emit);
}

/// Corollary (c): the class captured by MML strictly shrinks when moving
/// from `K₋,₊` to `K₊,₋`. Instance: the leaf-selection property “I am a
/// leaf fed from my neighbour's out-port 0” is MML-definable on `K₋,₊`,
/// while on `K₊,₋` the leaves of a star are bisimilar, so no formula can
/// single one out (Fact 1a).
#[test]
fn out_port_knowledge_is_not_in_port_knowledge() {
    let mut rng = StdRng::seed_from_u64(55);
    for k in [3usize, 5] {
        let g = generators::star(k);
        let p = PortNumbering::random(&g, &mut rng);

        // Definable on K_{-,+}: q1 ∧ ⟨(*,0)⟩⊤.
        let select = Formula::prop(1).and(&Formula::diamond(ModalIndex::Out(0), &Formula::top()));
        let k_mp = Kripke::k_mp(&g, &p);
        let chosen = evaluate(&k_mp, &select).unwrap();
        assert_eq!(chosen.iter().filter(|&&b| b).count(), 1, "exactly one leaf selected");
        assert!(!chosen[0], "the centre is never selected");

        // Obstruction on K_{+,-}: all leaves bisimilar.
        let k_pm = Kripke::k_pm(&g, &p);
        let classes = refine(&k_pm, BisimStyle::Plain);
        for leaf in 2..=k {
            assert!(classes.bisimilar(1, leaf));
        }
    }
}

/// Corollary (a)/(b) instance: on `K₋,₊`, the graded modality `⟨(*,j)⟩≥k`
/// adds nothing for k ∈ {0, 1} (trivially), and bisimilar-in-plain nodes of
/// the Theorem 13 witness are separated only once grading enters — i.e.
/// GML > ML on `K₋,₋`, matching `SB ⊊ MB`.
#[test]
fn grading_strictly_adds_power_on_k_mm() {
    let (g, (a, b)) = generators::theorem13_witness();
    let k = Kripke::k_mm(&g);
    // No ungraded formula separates a and b (they are plain-bisimilar)...
    let plain = refine(&k, BisimStyle::Plain);
    assert!(plain.bisimilar(a, b));
    // ...but a graded formula does.
    let f = Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(1));
    let truth = evaluate(&k, &f).unwrap();
    assert_ne!(truth[a], truth[b]);
}

/// Fact 1 on random instances: (g-)bisimilar worlds satisfy the same
/// (graded) formulas.
#[test]
fn bisimilar_worlds_agree_on_formulas() {
    let mut rng = StdRng::seed_from_u64(56);
    for _ in 0..10 {
        let g = generators::gnp(9, 0.3, &mut rng);
        let k = Kripke::k_mm(&g);
        let plain = refine(&k, BisimStyle::Plain);
        let graded = refine(&k, BisimStyle::Graded);
        let formulas = [
            Formula::diamond(ModalIndex::Any, &Formula::prop(2)),
            Formula::diamond(
                ModalIndex::Any,
                &Formula::diamond(ModalIndex::Any, &Formula::prop(1)).not(),
            ),
        ];
        let graded_formulas = [
            Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(2)),
            Formula::diamond_geq(ModalIndex::Any, 3, &Formula::top()),
        ];
        for f in &formulas {
            let truth = evaluate(&k, f).unwrap();
            for u in g.nodes() {
                for v in g.nodes() {
                    if plain.bisimilar(u, v) {
                        assert_eq!(truth[u], truth[v], "{g}: {f}");
                    }
                }
            }
        }
        for f in &graded_formulas {
            let truth = evaluate(&k, f).unwrap();
            for u in g.nodes() {
                for v in g.nodes() {
                    if graded.bisimilar(u, v) {
                        assert_eq!(truth[u], truth[v], "{g}: {f}");
                    }
                }
            }
        }
    }
}
