//! The lifting lemma, executable: a deterministic anonymous algorithm
//! cannot distinguish a port-numbered graph `(G, p)` from any covering
//! graph `(H, q)` — the execution at a cover node equals the execution at
//! its projection, round for round. This is the graph-theoretic companion
//! of bisimulation invariance (Section 3.3/4.2 of the paper): the
//! projection of a cover is a functional bisimulation on `K₊,₊`.

use portnum::algorithms::mb::OddOddMb;
use portnum::algorithms::sb::LocalMaxDegreeSb;
use portnum::algorithms::vv::ViewGather;
use portnum::algorithms::vvc::LocalTypeSymmetryBreak;
use portnum::graph::lifts::{lift, Voltages};
use portnum::graph::{generators, Graph, PortNumbering};
use portnum::logic::bisim::{bisimilar_across, BisimStyle};
use portnum::logic::Kripke;
use portnum::machine::adapters::{MbAsVector, SbAsVector};
use portnum::machine::{MessageSize, Simulator, VectorAlgorithm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `algo` on the base and on the lift and checks that outputs and
/// stopping times are constant on fibres and equal to the base values.
fn assert_execution_lifts<A>(algo: &A, g: &Graph, p: &PortNumbering, voltages: &Voltages)
where
    A: VectorAlgorithm,
    A::Msg: MessageSize,
    A::Output: PartialEq + std::fmt::Debug,
{
    let lifted = lift(g, p, voltages).expect("voltages match the base graph");
    let sim = Simulator::new();
    let base = sim.run(algo, g, p).expect("base run terminates");
    let cover = sim
        .run(algo, lifted.graph(), lifted.ports())
        .expect("cover run terminates");
    assert_eq!(base.rounds(), cover.rounds(), "round counts must agree");
    for w in lifted.graph().nodes() {
        let v = lifted.covering_map().project(w);
        assert_eq!(
            cover.outputs()[w],
            base.outputs()[v],
            "output at cover node {w} differs from its projection {v}"
        );
        assert_eq!(
            cover.stop_times()[w],
            base.stop_times()[v],
            "stopping time at cover node {w} differs from its projection {v}"
        );
    }
}

fn test_instances() -> Vec<(Graph, PortNumbering, Voltages)> {
    let mut rng = StdRng::seed_from_u64(2012);
    let mut out = Vec::new();
    for g in [
        generators::cycle(5),
        generators::star(4),
        generators::petersen(),
        generators::grid(3, 3),
        generators::no_one_factor(3),
    ] {
        let consistent = PortNumbering::consistent(&g);
        let random = PortNumbering::random(&g, &mut rng);
        for p in [consistent, random] {
            out.push((g.clone(), p.clone(), Voltages::identity(&g, 2)));
            out.push((g.clone(), p.clone(), Voltages::double_cover(&g)));
            out.push((g.clone(), p.clone(), Voltages::random(&g, 3, &mut rng)));
        }
    }
    out
}

#[test]
fn sb_executions_commute_with_covers() {
    for (g, p, voltages) in test_instances() {
        assert_execution_lifts(&SbAsVector(LocalMaxDegreeSb), &g, &p, &voltages);
    }
}

#[test]
fn mb_executions_commute_with_covers() {
    for (g, p, voltages) in test_instances() {
        assert_execution_lifts(&MbAsVector(OddOddMb), &g, &p, &voltages);
    }
}

#[test]
fn view_gathering_commutes_with_covers() {
    // The strongest check: the *entire depth-3 view* (which determines any
    // 3-round Vector algorithm's behaviour) is preserved by projection.
    for (g, p, voltages) in test_instances() {
        assert_execution_lifts(&ViewGather { radius: 3 }, &g, &p, &voltages);
    }
}

#[test]
fn vvc_symmetry_breaker_cannot_see_through_covers() {
    // Even the VVc-side algorithm of Theorem 17 — when run on an
    // *inconsistent* numbering it has no stopping guarantee in general,
    // but it always halts in 2 rounds by construction — commutes with
    // covers. Consistency is a *global* property: lifts of consistent
    // numberings need not be consistent, but execution still commutes.
    for (g, p, voltages) in test_instances() {
        assert_execution_lifts(&LocalTypeSymmetryBreak, &g, &p, &voltages);
    }
}

#[test]
fn cover_nodes_are_bisimilar_to_their_projections() {
    // The logic-side face of the same fact: (v, s) in the lift and v in
    // the base are bisimilar in K₊,₊ — checked by partition refinement on
    // the disjoint union.
    let mut rng = StdRng::seed_from_u64(7);
    for g in [generators::cycle(4), generators::petersen(), generators::star(3)] {
        let p = PortNumbering::random(&g, &mut rng);
        let lifted = lift(&g, &p, &Voltages::random(&g, 2, &mut rng)).unwrap();
        let base_k = Kripke::k_pp(&g, &p);
        let cover_k = Kripke::k_pp(lifted.graph(), lifted.ports());
        for w in lifted.graph().nodes() {
            let v = lifted.covering_map().project(w);
            assert!(
                bisimilar_across(&cover_k, w, &base_k, v, BisimStyle::Plain),
                "cover node {w} not bisimilar to projection {v}"
            );
            assert!(bisimilar_across(&cover_k, w, &base_k, v, BisimStyle::Graded));
        }
    }
}

#[test]
fn universal_cover_truncations_simulate_the_base() {
    // The inverse-limit companion of the finite lifts: running any
    // algorithm for T rounds at the root of the depth-(T+1) truncation of
    // the universal cover produces the output of the base node —
    // information from the mutilated leaves needs T+1 hops.
    use portnum::graph::views::universal_cover_truncation;
    let mut rng = StdRng::seed_from_u64(2013);
    let sim = Simulator::new();
    for g in [generators::petersen(), generators::grid(3, 3), generators::no_one_factor(3)] {
        let p = PortNumbering::random(&g, &mut rng);
        for radius in [1usize, 2, 3] {
            let base = sim.run(&ViewGather { radius }, &g, &p).unwrap();
            for root in [0usize, g.len() / 2] {
                let (tree, q, projection) =
                    universal_cover_truncation(&g, &p, root, radius + 1);
                let cover = sim.run(&ViewGather { radius }, &tree, &q).unwrap();
                assert_eq!(projection[0], root);
                assert_eq!(
                    cover.outputs()[0],
                    base.outputs()[root],
                    "{g}, root {root}, radius {radius}"
                );
            }
        }
    }
}

#[test]
fn truncation_depth_must_exceed_running_time() {
    // The sharpness of the guarantee: at depth exactly T the cut leaves
    // *can* change the root's T-round output (they lie about degrees).
    use portnum::graph::views::universal_cover_truncation;
    let g = generators::petersen();
    let p = PortNumbering::consistent(&g);
    let sim = Simulator::new();
    let radius = 2;
    let base = sim.run(&ViewGather { radius }, &g, &p).unwrap();
    let (tree, q, _) = universal_cover_truncation(&g, &p, 0, radius);
    let cover = sim.run(&ViewGather { radius }, &tree, &q).unwrap();
    assert_ne!(
        cover.outputs()[0], base.outputs()[0],
        "depth-T truncations see degree-1 leaves where the base has degree 3"
    );
}

#[test]
fn connected_lifts_defeat_leader_election_style_problems() {
    // Why covers matter for impossibility: any problem whose solutions
    // require a *unique* marked node (leader election) is unsolvable in
    // VVc on graph families closed under connected covers, because the
    // lifted execution marks every fibre member equally. We check the
    // mechanism: a connected 2-lift duplicates every output.
    let g = generators::cycle(5);
    let p = PortNumbering::consistent(&g);
    let lifted = lift(&g, &p, &Voltages::cyclic(&g, 2)).unwrap();
    assert_eq!(
        portnum::graph::properties::component_count(lifted.graph()),
        1,
        "cyclic 2-lift of an odd cycle is connected"
    );
    let sim = Simulator::new();
    let base = sim.run(&ViewGather { radius: 4 }, &g, &p).unwrap();
    let cover = sim
        .run(&ViewGather { radius: 4 }, lifted.graph(), lifted.ports())
        .unwrap();
    for v in g.nodes() {
        let fiber = lifted.covering_map().fiber(v);
        assert_eq!(fiber.len(), 2);
        // Both fibre members produce the base output: any "leader" mark
        // at v would be duplicated at both, so no algorithm elects a
        // unique leader on the 10-cycle while behaving correctly on the
        // 5-cycle.
        for w in fiber {
            assert_eq!(cover.outputs()[w], base.outputs()[v]);
        }
    }
}
