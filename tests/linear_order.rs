//! End-to-end reproduction of the paper's main result: the linear order
//! `SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc` (relations (1) and (2)).

use portnum::separations::{derive_linear_order, theorem11, theorem13, theorem17};
use portnum::ProblemClass;

#[test]
fn all_separations_hold() {
    for evidence in derive_linear_order() {
        assert!(evidence.holds(), "{evidence}");
    }
}

#[test]
fn separations_respect_the_class_levels() {
    for evidence in derive_linear_order() {
        assert!(evidence.weaker.level() < evidence.stronger.level());
        assert!(evidence.weaker.contained_in(evidence.stronger));
        assert!(!evidence.stronger.contained_in(evidence.weaker));
    }
}

#[test]
fn theorem11_scales_with_star_size() {
    for k in [2usize, 3, 6, 10] {
        let e = theorem11(k, 3);
        assert!(e.holds(), "star K(1,{k}): {e}");
        assert_eq!(e.bisimilar_nodes.len(), k);
    }
}

#[test]
fn theorem17_holds_for_higher_odd_degrees() {
    let e = theorem17(5, 2);
    assert!(e.holds(), "{e}");
    assert_eq!(e.graph.len(), 1 + 5 * 7);
}

#[test]
fn theorem13_graded_bisimulation_separates_what_plain_cannot() {
    let e = theorem13();
    assert!(e.holds());
    // The evidence already encodes: plain-bisimilar, not graded-bisimilar.
    assert_eq!(e.weaker, ProblemClass::Sb);
    assert_eq!(e.stronger, ProblemClass::Mb);
}

#[test]
fn four_levels_exactly() {
    let mut levels: Vec<usize> = ProblemClass::ALL.iter().map(|c| c.level()).collect();
    levels.sort_unstable();
    levels.dedup();
    assert_eq!(levels, vec![0, 1, 2, 3]);
}
