//! Property-based tests (proptest) on the core invariants of the
//! workspace: port numberings, multisets, the formula parser, and the
//! Theorem 2 capture, all on arbitrary inputs.

use portnum_graph::{Graph, PortNumbering};
use portnum_logic::compile::{compile_mb, compile_sb};
use portnum_logic::{evaluate, parse, Formula, IndexFamily, Kripke, ModalIndex};
use portnum_machine::adapters::{MbAsVector, SbAsVector};
use portnum_machine::{Multiset, Simulator};
use proptest::prelude::*;

/// An arbitrary simple graph on up to 9 nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=9).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut builder = Graph::builder(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if mask[idx] {
                        builder.edge(u, v).expect("each pair visited once");
                    }
                    idx += 1;
                }
            }
            builder.build()
        })
    })
}

/// An arbitrary formula over the `(*,*)` family.
fn arb_any_formula(graded: bool) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::top()),
        Just(Formula::bottom()),
        (0usize..=5).prop_map(Formula::prop),
    ];
    leaf.prop_recursive(4, 24, 3, move |inner| {
        let max_grade = if graded { 3usize } else { 1 };
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(&b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(&b)),
            (1usize..=max_grade, inner)
                .prop_map(|(k, f)| Formula::diamond_geq(ModalIndex::Any, k, &f)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_port_numberings_are_valid(g in arb_graph(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        // p is a bijection realising exactly A(G).
        for v in g.nodes() {
            prop_assert_eq!(p.degree(v), g.degree(v));
            let mut targets: Vec<usize> = (0..g.degree(v))
                .map(|i| p.forward(portnum_graph::Port::new(v, i)).node)
                .collect();
            targets.sort_unstable();
            prop_assert_eq!(targets.as_slice(), g.neighbors(v));
            for i in 0..g.degree(v) {
                let q = portnum_graph::Port::new(v, i);
                prop_assert_eq!(p.backward(p.forward(q)), q);
            }
        }
    }

    #[test]
    fn consistent_numberings_are_involutions(g in arb_graph(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PortNumbering::random_consistent(&g, &mut rng);
        prop_assert!(p.is_consistent());
        for (from, to) in p.pairs() {
            prop_assert_eq!(p.forward(to), from);
        }
    }

    #[test]
    fn multiset_laws(xs in proptest::collection::vec(0u8..8, 0..20),
                     ys in proptest::collection::vec(0u8..8, 0..20)) {
        let a: Multiset<u8> = xs.iter().copied().collect();
        let b: Multiset<u8> = ys.iter().copied().collect();
        prop_assert_eq!(a.len(), xs.len());
        // Union is commutative on counts.
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba);
        // Set projection forgets exactly the multiplicities.
        let set = a.to_set();
        prop_assert_eq!(set.len(), a.distinct_len());
        for x in a.distinct() {
            prop_assert!(set.contains(x));
        }
        // Sorted iteration matches a sorted vector.
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let iterated: Vec<u8> = a.iter().copied().collect();
        prop_assert_eq!(iterated, sorted);
    }

    #[test]
    fn parser_round_trips(f in arb_any_formula(true)) {
        let text = f.to_string();
        let parsed = parse(&text).expect("display output must parse");
        prop_assert_eq!(parsed, f);
    }

    #[test]
    fn formula_metrics_are_consistent(f in arb_any_formula(true)) {
        prop_assert!(f.uses_only(IndexFamily::Any));
        // Boxes only add what diamonds add.
        let boxed = Formula::box_(ModalIndex::Any, &f);
        prop_assert_eq!(boxed.modal_depth(), f.modal_depth() + 1);
        prop_assert!(f.size() >= 1);
    }

    #[test]
    fn theorem2_capture_sb(g in arb_graph(), f in arb_any_formula(false), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let k = Kripke::k_mm(&g);
        let algo = compile_sb(&f).expect("ungraded formulas compile to SB");
        let run = Simulator::new().run(&SbAsVector(algo), &g, &p).expect("terminates");
        prop_assert_eq!(run.outputs(), evaluate(&k, &f).expect("family matches"));
        prop_assert_eq!(run.rounds(), f.modal_depth());
    }

    #[test]
    fn theorem2_capture_mb(g in arb_graph(), f in arb_any_formula(true), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let k = Kripke::k_mm(&g);
        let algo = compile_mb(&f).expect("graded formulas compile to MB");
        let run = Simulator::new().run(&MbAsVector(algo), &g, &p).expect("terminates");
        prop_assert_eq!(run.outputs(), evaluate(&k, &f).expect("family matches"));
        prop_assert_eq!(run.rounds(), f.modal_depth());
    }

    #[test]
    fn edge_packing_always_covers(g in arb_graph(), seed in any::<u64>()) {
        use portnum::algorithms::mb::EdgePackingVertexCover;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let run = Simulator::new()
            .run(&MbAsVector(EdgePackingVertexCover), &g, &p)
            .expect("edge packing terminates");
        prop_assert!(portnum::verify::is_vertex_cover(&g, run.outputs()));
        let size = run.outputs().iter().filter(|&&b| b).count();
        let opt = portnum::verify::min_vertex_cover_size(&g);
        prop_assert!(size <= 2 * opt, "|C| = {size} > 2·{opt}");
    }
}
