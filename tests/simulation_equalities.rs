//! The equalities `MB = VB`, `MV = VV`, `SV = MV` (Theorems 4, 8, 9)
//! stress-tested on random graphs and numberings, including the composed
//! `SV = VV` simulation.

use portnum::sim::{set_from_vector, MbFromVb, MultisetFromVector, SetFromMultiset};
use portnum_graph::{generators, Graph, PortNumbering};
use portnum_machine::adapters::{
    BroadcastAsVector, MbAsBroadcast, MbAsVector, MultisetAsVector, SetAsVector,
};
use portnum_machine::{
    BroadcastAlgorithm, MbAlgorithm, Multiset, MultisetAlgorithm, Payload, Simulator, Status,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 3-round Multiset algorithm: iterated multiset-of-degrees hashing
/// (a colour-refinement step per round), output the final colour.
#[derive(Debug, Clone, Copy)]
struct WlColors {
    rounds: usize,
}

impl MultisetAlgorithm for WlColors {
    type State = (usize, u64);
    type Msg = u64;
    type Output = u64;

    fn init(&self, degree: usize) -> Status<(usize, u64), u64> {
        if self.rounds == 0 {
            Status::Stopped(degree as u64)
        } else {
            Status::Running((0, degree as u64))
        }
    }

    fn message(&self, &(_, color): &(usize, u64), _port: usize) -> u64 {
        color
    }

    fn step(
        &self,
        &(round, color): &(usize, u64),
        received: &Multiset<Payload<u64>>,
    ) -> Status<(usize, u64), u64> {
        // A cheap deterministic hash of (own colour, multiset).
        let mut h: u64 = color.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for (payload, count) in received.counts() {
            let v = match payload {
                Payload::Data(c) => c.wrapping_add(1),
                Payload::Silent => 0,
            };
            h = h.rotate_left(13) ^ v.wrapping_mul(count as u64 + 1);
        }
        if round + 1 == self.rounds {
            Status::Stopped(h)
        } else {
            Status::Running((round + 1, h))
        }
    }
}

/// Broadcast variant of the same idea.
#[derive(Debug, Clone, Copy)]
struct BcWlColors {
    rounds: usize,
}

impl BroadcastAlgorithm for BcWlColors {
    type State = (usize, u64);
    type Msg = u64;
    type Output = u64;

    fn init(&self, degree: usize) -> Status<(usize, u64), u64> {
        if self.rounds == 0 {
            Status::Stopped(degree as u64)
        } else {
            Status::Running((0, degree as u64))
        }
    }

    fn broadcast(&self, &(_, color): &(usize, u64)) -> u64 {
        color
    }

    fn step(
        &self,
        &(round, color): &(usize, u64),
        received: &[Payload<u64>],
    ) -> Status<(usize, u64), u64> {
        // Order-insensitive fold so the output is numbering-independent.
        let mut vals: Vec<u64> = received
            .iter()
            .map(|p| match p {
                Payload::Data(c) => c.wrapping_add(1),
                Payload::Silent => 0,
            })
            .collect();
        vals.sort_unstable();
        let mut h: u64 = color.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for v in vals {
            h = h.rotate_left(13) ^ v;
        }
        if round + 1 == self.rounds {
            Status::Stopped(h)
        } else {
            Status::Running((round + 1, h))
        }
    }
}

fn suite(rng: &mut StdRng) -> Vec<Graph> {
    let mut graphs = vec![
        generators::figure1_graph(),
        generators::cycle(7),
        generators::star(5),
        generators::petersen(),
    ];
    for _ in 0..3 {
        graphs.push(generators::gnp(9, 0.3, rng));
    }
    graphs.push(generators::random_regular(10, 3, rng));
    graphs
}

#[test]
fn theorem4_set_simulates_multiset_everywhere() {
    let mut rng = StdRng::seed_from_u64(44);
    let sim = Simulator::new();
    for g in suite(&mut rng) {
        let delta = g.max_degree().max(1);
        for _ in 0..3 {
            let p = PortNumbering::random(&g, &mut rng);
            for rounds in [1usize, 3] {
                let inner = WlColors { rounds };
                let direct = sim.run(&MultisetAsVector(inner), &g, &p).unwrap();
                let wrapped =
                    sim.run(&SetAsVector(SetFromMultiset::new(inner, delta)), &g, &p).unwrap();
                assert_eq!(direct.outputs(), wrapped.outputs(), "{g} rounds {rounds}");
                assert_eq!(wrapped.rounds(), direct.rounds() + 2 * delta, "{g}");
            }
        }
    }
}

#[test]
fn theorem8_multiset_simulates_vector_on_multiset_invariant_algorithms() {
    // For algorithms that are semantically multiset-invariant, the
    // simulation must reproduce outputs exactly.
    let mut rng = StdRng::seed_from_u64(88);
    let sim = Simulator::new();
    for g in suite(&mut rng) {
        let p = PortNumbering::random(&g, &mut rng);
        let inner = MultisetAsVector(WlColors { rounds: 3 });
        let direct = sim.run(&inner, &g, &p).unwrap();
        let wrapped =
            sim.run(&MultisetAsVector(MultisetFromVector::new(inner)), &g, &p).unwrap();
        assert_eq!(direct.outputs(), wrapped.outputs(), "{g}");
        assert_eq!(direct.rounds(), wrapped.rounds(), "{g}");
    }
}

#[test]
fn theorem9_mb_simulates_vb() {
    let mut rng = StdRng::seed_from_u64(99);
    let sim = Simulator::new();
    for g in suite(&mut rng) {
        let p = PortNumbering::random(&g, &mut rng);
        for rounds in [1usize, 2, 4] {
            let inner = BcWlColors { rounds };
            let direct = sim.run(&BroadcastAsVector(inner), &g, &p).unwrap();
            let wrapped = sim.run(&MbAsVector(MbFromVb::new(inner)), &g, &p).unwrap();
            assert_eq!(direct.outputs(), wrapped.outputs(), "{g} rounds {rounds}");
            assert_eq!(direct.rounds(), wrapped.rounds(), "{g}");
        }
    }
}

#[test]
fn composed_sv_equals_vv() {
    // SV = VV via Theorem 8 then Theorem 4.
    let mut rng = StdRng::seed_from_u64(111);
    let sim = Simulator::new();
    for g in suite(&mut rng) {
        let delta = g.max_degree().max(1);
        let p = PortNumbering::random(&g, &mut rng);
        let inner = MultisetAsVector(WlColors { rounds: 2 });
        let direct = sim.run(&inner, &g, &p).unwrap();
        let wrapped = sim.run(&SetAsVector(set_from_vector(inner, delta)), &g, &p).unwrap();
        assert_eq!(direct.outputs(), wrapped.outputs(), "{g}");
        assert_eq!(wrapped.rounds(), direct.rounds() + 2 * delta, "{g}");
    }
}

#[test]
fn mb_algorithms_survive_the_whole_tower() {
    // An MB algorithm wrapped as VB, then simulated back in MB (Theorem 9):
    // the round trip across the MB = VB equality.
    use portnum::algorithms::mb::OddOddMb;
    use portnum::problems::{OddOdd, Problem};
    let mut rng = StdRng::seed_from_u64(123);
    let sim = Simulator::new();
    for g in suite(&mut rng) {
        let p = PortNumbering::random(&g, &mut rng);
        let wrapped = sim
            .run(&MbAsVector(MbFromVb::new(MbAsBroadcast(OddOddMb))), &g, &p)
            .unwrap();
        assert!(OddOdd.is_valid(&g, wrapped.outputs()), "{g}");
    }
}

// Keep trait imports used even if rustc trims test configs.
#[allow(dead_code)]
fn _markers<A: MbAlgorithm>() {}
