//! Section 3.1 end-to-end: the two stronger models (unique ids,
//! randomness) solve maximal independent set on instances where
//! bisimulation proves every weak-model algorithm fails — and the
//! embeddings of the weak models into the stronger ones are exact.

use portnum::problems::{MaximalIndependentSet, Problem};
use portnum::separations;
use portnum::stronger::local::{run_with_ids, GreedyMisById, IgnoreIds};
use portnum::stronger::randomized::{run_randomized, IgnoreRandomness, LubyMis};
use portnum::stronger::separation::{
    even_cycle_matched_numbering, mis_beyond_vvc, mis_beyond_vvc_randomized,
};
use portnum_graph::{generators, PortNumbering};
use portnum_logic::bisim::{refine, BisimStyle};
use portnum_logic::{evaluate, Kripke};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn the_full_hierarchy_with_its_two_extensions() {
    // The paper's landscape in one test: the linear order of the seven
    // weak classes, plus the two Section 3.1 models strictly above VVc.
    for e in separations::derive_linear_order() {
        assert!(e.holds(), "{e}");
    }
    for m in [2usize, 5] {
        assert!(mis_beyond_vvc(m).holds());
        assert!(mis_beyond_vvc_randomized(m, 13).holds());
    }
}

#[test]
fn greedy_and_luby_agree_with_the_problem_validator_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(31);
    for trial in 0..15 {
        let g = generators::gnp(9, 0.35, &mut rng);
        let p = PortNumbering::random(&g, &mut rng);
        let mut ids: Vec<u64> = (0..g.len() as u64).collect();
        // Shuffle ids by random swaps to decorrelate from node order.
        for i in 0..ids.len() {
            let j = rng.random_range(0..ids.len());
            ids.swap(i, j);
        }
        let (out, _) = run_with_ids(&GreedyMisById, &g, &p, &ids, 4 * g.len() + 4)
            .expect("greedy terminates");
        assert!(MaximalIndependentSet.is_valid(&g, &out), "trial {trial} greedy: {out:?}");

        let (out, _) = run_randomized(&LubyMis, &g, &p, trial as u64, 100_000)
            .expect("Luby terminates w.h.p.");
        assert!(MaximalIndependentSet.is_valid(&g, &out), "trial {trial} luby: {out:?}");
    }
}

#[test]
fn mis_outputs_constant_under_bisimilar_ids_free_models() {
    // On the witness numbering, even the strongest weak-model algorithm —
    // compiled from any formula — is constant across the cycle, because
    // one world of K++ satisfies a formula iff all do.
    let (g, p) = even_cycle_matched_numbering(4);
    let k = Kripke::k_pp(&g, &p);
    let classes = refine(&k, BisimStyle::Plain);
    assert_eq!(classes.class_count(classes.depth()), 1);
    // Sample formulas of every depth: extensions are all-or-nothing.
    use portnum_logic::{Formula, ModalIndex};
    let mut f = Formula::prop(2);
    for depth in 0..4 {
        let truth = evaluate(&k, &f).unwrap();
        assert!(
            truth.iter().all(|&b| b == truth[0]),
            "depth {depth}: non-constant extension on a bisimilar model"
        );
        f = Formula::diamond(ModalIndex::InOut(depth % 2, depth % 2), &f);
    }
}

#[test]
fn embeddings_are_conservative() {
    // Running a weak-model algorithm through the stronger-model runners
    // changes nothing: same outputs, same round counts, for every
    // algorithm class (exercised through the Vector embedding).
    use portnum::algorithms::vvc::LocalTypeSymmetryBreak;
    use portnum_machine::Simulator;
    let mut rng = StdRng::seed_from_u64(77);
    for g in [generators::petersen(), generators::no_one_factor(3)] {
        let p = PortNumbering::random_consistent(&g, &mut rng);
        let direct = Simulator::new().run(&LocalTypeSymmetryBreak, &g, &p).unwrap();

        let ids: Vec<u64> = (0..g.len() as u64).map(|v| 1000 - v).collect();
        let (id_out, id_rounds) =
            run_with_ids(&IgnoreIds(LocalTypeSymmetryBreak), &g, &p, &ids, 100).unwrap();
        assert_eq!(id_out, direct.outputs());
        assert_eq!(id_rounds, direct.rounds());

        let (rand_out, rand_rounds) =
            run_randomized(&IgnoreRandomness(LocalTypeSymmetryBreak), &g, &p, 5, 100).unwrap();
        assert_eq!(rand_out, direct.outputs());
        assert_eq!(rand_rounds, direct.rounds());
    }
}

#[test]
fn luby_round_counts_scale_gently() {
    // Shape check in the spirit of the paper's O(log n) expectation: the
    // average Luby round count grows much slower than n.
    let mut avg_rounds = Vec::new();
    for n in [8usize, 32, 128] {
        let g = generators::cycle(n);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        let mut total = 0usize;
        for seed in 0..8u64 {
            let (out, rounds) = run_randomized(&LubyMis, &g, &p, seed, 100_000).unwrap();
            assert!(MaximalIndependentSet.is_valid(&g, &out));
            total += rounds;
        }
        avg_rounds.push(total as f64 / 8.0);
    }
    // 16x more nodes should cost far less than 16x more rounds.
    assert!(
        avg_rounds[2] < avg_rounds[0] * 8.0,
        "rounds grew too fast: {avg_rounds:?}"
    );
}
