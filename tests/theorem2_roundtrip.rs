//! Theorem 2 exercised across random graphs, random port numberings, and
//! randomly generated formulas: compiled algorithms agree with the model
//! checker, in `md(ψ)` rounds, in all six class/logic pairings.

use portnum_graph::{generators, Graph, PortNumbering};
use portnum_logic::compile::{
    compile_broadcast, compile_mb, compile_multiset, compile_sb, compile_set, compile_vector,
};
use portnum_logic::{evaluate, Formula, IndexFamily, Kripke, ModalIndex};
use portnum_machine::adapters::{
    BroadcastAsVector, MbAsVector, MultisetAsVector, SbAsVector, SetAsVector,
};
use portnum_machine::Simulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random formula over the given index family, with grades allowed or
/// not, of modal depth at most `depth`.
fn random_formula<R: Rng>(
    rng: &mut R,
    family: IndexFamily,
    graded: bool,
    depth: usize,
    max_port: usize,
) -> Formula {
    let choice = rng.random_range(0..10u32);
    match choice {
        0 => Formula::top(),
        1 => Formula::bottom(),
        2 | 3 => Formula::prop(rng.random_range(0..=max_port)),
        4 => random_formula(rng, family, graded, depth, max_port).not(),
        5 | 6 => {
            let a = random_formula(rng, family, graded, depth, max_port);
            let b = random_formula(rng, family, graded, depth, max_port);
            if choice == 5 {
                a.and(&b)
            } else {
                a.or(&b)
            }
        }
        _ if depth == 0 => Formula::prop(rng.random_range(0..=max_port)),
        _ => {
            let index = match family {
                IndexFamily::InOut => ModalIndex::InOut(
                    rng.random_range(0..max_port),
                    rng.random_range(0..max_port),
                ),
                IndexFamily::Out => ModalIndex::Out(rng.random_range(0..max_port)),
                IndexFamily::In => ModalIndex::In(rng.random_range(0..max_port)),
                IndexFamily::Any => ModalIndex::Any,
            };
            let grade = if graded { rng.random_range(0..=3) } else { 1 };
            let inner = random_formula(rng, family, graded, depth - 1, max_port);
            Formula::diamond_geq(index, grade, &inner)
        }
    }
}

fn random_graphs(rng: &mut StdRng) -> Vec<Graph> {
    let mut graphs = vec![
        generators::figure1_graph(),
        generators::cycle(5),
        generators::star(3),
        generators::path(4),
    ];
    for _ in 0..4 {
        graphs.push(generators::gnp(7, 0.35, rng));
    }
    graphs
}

#[test]
fn sb_and_mb_agree_with_k_mm() {
    let mut rng = StdRng::seed_from_u64(101);
    let sim = Simulator::new();
    for round in 0..30 {
        let graphs = random_graphs(&mut rng);
        for g in graphs {
            let p = PortNumbering::random(&g, &mut rng);
            let k = Kripke::k_mm(&g);
            let plain = random_formula(&mut rng, IndexFamily::Any, false, 3, g.max_degree().max(1));
            let algo = compile_sb(&plain).expect("ungraded ML compiles to SB");
            let run = sim.run(&SbAsVector(algo), &g, &p).unwrap();
            assert_eq!(run.outputs(), evaluate(&k, &plain).unwrap(), "SB {round}: {plain} on {g}");
            // The compiled algorithm stops as soon as the root's truth
            // value is determined, which can happen before `md(ψ)` rounds
            // (e.g. a trivially-true `⟨α⟩≥0` at the root); Theorem 2's
            // bound is an upper bound.
            assert!(run.rounds() <= plain.modal_depth(), "SB overran md: {plain}");

            let graded = random_formula(&mut rng, IndexFamily::Any, true, 3, g.max_degree().max(1));
            let algo = compile_mb(&graded).expect("GML compiles to MB");
            let run = sim.run(&MbAsVector(algo), &g, &p).unwrap();
            assert_eq!(run.outputs(), evaluate(&k, &graded).unwrap(), "MB {round}: {graded} on {g}");
            assert!(run.rounds() <= graded.modal_depth(), "MB overran md: {graded}");
        }
    }
}

#[test]
fn set_and_multiset_agree_with_k_mp() {
    let mut rng = StdRng::seed_from_u64(202);
    let sim = Simulator::new();
    for _ in 0..30 {
        for g in random_graphs(&mut rng) {
            let p = PortNumbering::random(&g, &mut rng);
            let k = Kripke::k_mp(&g, &p);
            let max_port = g.max_degree().max(1);
            let plain = random_formula(&mut rng, IndexFamily::Out, false, 3, max_port);
            let run = sim.run(&SetAsVector(compile_set(&plain).unwrap()), &g, &p).unwrap();
            assert_eq!(run.outputs(), evaluate(&k, &plain).unwrap(), "Set: {plain} on {g}");

            let graded = random_formula(&mut rng, IndexFamily::Out, true, 3, max_port);
            let run =
                sim.run(&MultisetAsVector(compile_multiset(&graded).unwrap()), &g, &p).unwrap();
            assert_eq!(run.outputs(), evaluate(&k, &graded).unwrap(), "Multiset: {graded} on {g}");
        }
    }
}

#[test]
fn broadcast_agrees_with_k_pm_and_vector_with_k_pp() {
    let mut rng = StdRng::seed_from_u64(303);
    let sim = Simulator::new();
    for _ in 0..30 {
        for g in random_graphs(&mut rng) {
            let p = PortNumbering::random(&g, &mut rng);
            let max_port = g.max_degree().max(1);
            let f_in = random_formula(&mut rng, IndexFamily::In, true, 3, max_port);
            let k = Kripke::k_pm(&g, &p);
            let run =
                sim.run(&BroadcastAsVector(compile_broadcast(&f_in).unwrap()), &g, &p).unwrap();
            assert_eq!(run.outputs(), evaluate(&k, &f_in).unwrap(), "VB: {f_in} on {g}");

            let f_io = random_formula(&mut rng, IndexFamily::InOut, true, 3, max_port);
            let k = Kripke::k_pp(&g, &p);
            let run = sim.run(&compile_vector(&f_io).unwrap(), &g, &p).unwrap();
            assert_eq!(run.outputs(), evaluate(&k, &f_io).unwrap(), "VV: {f_io} on {g}");
        }
    }
}

#[test]
fn consistent_numberings_are_a_special_case_of_vv() {
    // VVc(1) is captured by MML on consistent K_{+,+} (Theorem 2a): the
    // same compiled algorithm, promised a consistent numbering.
    let mut rng = StdRng::seed_from_u64(404);
    let sim = Simulator::new();
    for _ in 0..20 {
        for g in random_graphs(&mut rng) {
            let p = PortNumbering::random_consistent(&g, &mut rng);
            let f = random_formula(&mut rng, IndexFamily::InOut, true, 2, g.max_degree().max(1));
            let k = Kripke::k_pp(&g, &p);
            let run = sim.run(&compile_vector(&f).unwrap(), &g, &p).unwrap();
            assert_eq!(run.outputs(), evaluate(&k, &f).unwrap(), "VVc: {f} on {g}");
        }
    }
}
